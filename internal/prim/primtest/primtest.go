// Package primtest is a conformance suite for prim.Substrate
// implementations. Both substrates — the deterministic simulation kernel
// (through the internal/register adapter, i.e. deploy.Sim) and the
// real-time runtime — must present the same contract to algorithm code:
// tasks land on the process they were spawned on, Step consumes schedule
// allocation and unwinds on crash, registers are read-your-writes and
// visible across tasks, abortable registers never abort solo operations,
// and factories preserve register names and operation counters.
//
// A substrate test package builds a Harness around a fresh substrate and
// calls Run; the suite never imports a substrate itself, so it sits below
// both and cannot create an import cycle.
package primtest

import (
	"sync/atomic"
	"testing"

	"tbwf/internal/prim"
)

// Harness adapts one substrate instance to the suite.
//
// Run must drive the substrate until done() reports true and then return
// nil, or return an error if the substrate stalls (budget exhausted,
// timeout). On the simulation kernel that means pumping Kernel.Run; on
// the real-time runtime, polling done while the goroutines free-run.
type Harness struct {
	// Sub is the substrate under test, with at least two processes.
	Sub prim.Substrate
	// Run drives spawned tasks until done() is true.
	Run func(done func() bool) error
	// Crash crashes process p mid-run. Nil skips the crash-unwinding
	// test for substrates without crash injection.
	Crash func(p int)
}

// Run exercises the substrate contract. mk must return a fresh Harness —
// a new substrate with no tasks — on every call, since each subtest
// spawns its own task population.
func Run(t *testing.T, mk func(t *testing.T) *Harness) {
	t.Run("SpawnStepAccounting", func(t *testing.T) { testSpawnStep(t, mk(t)) })
	t.Run("RegisterHandoff", func(t *testing.T) { testRegisterHandoff(t, mk(t)) })
	t.Run("AbortableSolo", func(t *testing.T) { testAbortableSolo(t, mk(t)) })
	t.Run("AbortableNeverAbort", func(t *testing.T) { testAbortableNeverAbort(t, mk(t)) })
	t.Run("CrashUnwinds", func(t *testing.T) { testCrashUnwinds(t, mk(t)) })
	t.Run("RegisterMetadata", func(t *testing.T) { testRegisterMetadata(t, mk(t)) })
}

func allTrue(flags []atomic.Bool) func() bool {
	return func() bool {
		for i := range flags {
			if !flags[i].Load() {
				return false
			}
		}
		return true
	}
}

// Every process can host a task; the task sees its own process ID and may
// take steps and finish.
func testSpawnStep(t *testing.T, h *Harness) {
	n := h.Sub.N()
	if n < 2 {
		t.Fatalf("conformance harness needs >= 2 processes, got %d", n)
	}
	ids := make([]atomic.Int64, n)
	done := make([]atomic.Bool, n)
	for p := 0; p < n; p++ {
		p := p
		h.Sub.Spawn(p, "conf-step", func(pp prim.Proc) {
			ids[p].Store(int64(pp.ID()))
			for i := 0; i < 64; i++ {
				pp.Step()
			}
			done[p].Store(true)
		})
	}
	if err := h.Run(allTrue(done)); err != nil {
		t.Fatal(err)
	}
	for p := 0; p < n; p++ {
		if got := ids[p].Load(); got != int64(p) {
			t.Errorf("task spawned on process %d ran with ID %d", p, got)
		}
	}
}

// Atomic registers are read-your-writes within a task and visible across
// tasks: a reader polling with Step eventually observes the writer's
// final value.
func testRegisterHandoff(t *testing.T, h *Harness) {
	reg := prim.NewRegister[int64](h.Sub, "conf/handoff", 0)
	var ryw, got atomic.Int64
	var done atomic.Bool
	h.Sub.Spawn(1, "conf-reader", func(pp prim.Proc) {
		for {
			if v := reg.Read(); v == 42 {
				got.Store(v)
				done.Store(true)
				return
			}
			pp.Step()
		}
	})
	h.Sub.Spawn(0, "conf-writer", func(pp prim.Proc) {
		reg.Write(41)
		ryw.Store(reg.Read())
		pp.Step()
		reg.Write(42)
	})
	if err := h.Run(done.Load); err != nil {
		t.Fatal(err)
	}
	if v := ryw.Load(); v != 41 {
		t.Errorf("writer read back %d after writing 41", v)
	}
	if v := got.Load(); v != 42 {
		t.Errorf("reader handed off %d, want 42", v)
	}
}

// Solo operations on an abortable register never abort: aborts require an
// overlapping operation, and here a single task owns the register.
func testAbortableSolo(t *testing.T, h *Harness) {
	ab := prim.NewAbortable[int64](h.Sub, "conf/solo", 7)
	var writeOK, readOK, done atomic.Bool
	var readVal atomic.Int64
	h.Sub.Spawn(0, "conf-solo", func(pp prim.Proc) {
		writeOK.Store(ab.Write(11))
		pp.Step()
		if v, ok := ab.Read(); ok {
			readOK.Store(true)
			readVal.Store(v)
		}
		done.Store(true)
	})
	if err := h.Run(done.Load); err != nil {
		t.Fatal(err)
	}
	if !writeOK.Load() {
		t.Error("solo write aborted")
	}
	if !readOK.Load() {
		t.Error("solo read aborted")
	} else if v := readVal.Load(); v != 11 {
		t.Errorf("solo read returned %d, want 11", v)
	}
}

// Under NeverAbort every operation succeeds even when all processes hammer
// one register, and the register's abort counters stay zero.
func testAbortableNeverAbort(t *testing.T, h *Harness) {
	n := h.Sub.N()
	ab := prim.NewAbortable[int64](h.Sub, "conf/contend", 0,
		prim.WithAbortPolicy(prim.NeverAbort()))
	var aborts atomic.Int64
	done := make([]atomic.Bool, n)
	for p := 0; p < n; p++ {
		p := p
		h.Sub.Spawn(p, "conf-contend", func(pp prim.Proc) {
			for i := 0; i < 32; i++ {
				if !ab.Write(int64(p)) {
					aborts.Add(1)
				}
				if _, ok := ab.Read(); !ok {
					aborts.Add(1)
				}
				pp.Step()
			}
			done[p].Store(true)
		})
	}
	if err := h.Run(allTrue(done)); err != nil {
		t.Fatal(err)
	}
	if a := aborts.Load(); a != 0 {
		t.Errorf("%d operations aborted under NeverAbort", a)
	}
	st, ok := prim.RegisterStats(ab)
	if !ok {
		t.Fatal("abortable register exposes no stats")
	}
	if st.ReadAborts != 0 || st.WriteAborts != 0 {
		t.Errorf("abort counters %d/%d under NeverAbort", st.ReadAborts, st.WriteAborts)
	}
	if want := int64(32 * n); st.Writes < want {
		t.Errorf("register counted %d writes, want >= %d", st.Writes, want)
	}
}

// Crashing a process unwinds its tasks through the normal exit path:
// deferred cleanup runs, and surviving processes keep stepping.
func testCrashUnwinds(t *testing.T, h *Harness) {
	if h.Crash == nil {
		t.Skip("harness provides no crash injection")
	}
	var cleanup, ctlDone atomic.Bool
	h.Sub.Spawn(1, "conf-victim", func(pp prim.Proc) {
		defer cleanup.Store(true)
		for {
			pp.Step()
		}
	})
	h.Sub.Spawn(0, "conf-controller", func(pp prim.Proc) {
		for i := 0; i < 64; i++ {
			pp.Step()
		}
		h.Crash(1)
		for !cleanup.Load() {
			pp.Step()
		}
		ctlDone.Store(true)
	})
	if err := h.Run(func() bool { return cleanup.Load() && ctlDone.Load() }); err != nil {
		t.Fatal(err)
	}
	if !cleanup.Load() {
		t.Error("victim's deferred cleanup never ran")
	}
	if !ctlDone.Load() {
		t.Error("controller did not survive the other process's crash")
	}
}

// The type-erased factories preserve register names and operation
// counters, so telemetry reads the same on both substrates.
func testRegisterMetadata(t *testing.T, h *Harness) {
	reg := prim.NewRegister[int64](h.Sub, "conf/meta/atomic", 5)
	ab := prim.NewAbortable[int64](h.Sub, "conf/meta/abortable", 0)
	if got := prim.RegisterName(reg); got != "conf/meta/atomic" {
		t.Errorf("atomic register name %q", got)
	}
	if got := prim.RegisterName(ab); got != "conf/meta/abortable" {
		t.Errorf("abortable register name %q", got)
	}
	var done atomic.Bool
	h.Sub.Spawn(0, "conf-meta", func(pp prim.Proc) {
		_ = reg.Read()
		reg.Write(6)
		pp.Step()
		ab.Write(1)
		ab.Read()
		done.Store(true)
	})
	if err := h.Run(done.Load); err != nil {
		t.Fatal(err)
	}
	st, ok := prim.RegisterStats(reg)
	if !ok {
		t.Fatal("atomic register exposes no stats")
	}
	if st.Reads < 1 || st.Writes < 1 {
		t.Errorf("atomic register counted %d reads / %d writes, want >= 1 each", st.Reads, st.Writes)
	}
	ast, ok := prim.RegisterStats(ab)
	if !ok {
		t.Fatal("abortable register exposes no stats")
	}
	if ast.Reads < 1 || ast.Writes < 1 {
		t.Errorf("abortable register counted %d reads / %d writes, want >= 1 each", ast.Reads, ast.Writes)
	}
}
