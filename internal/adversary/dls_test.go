package adversary

import (
	"testing"

	"tbwf/internal/prim"
	"tbwf/internal/sim"
)

// spin runs n spinning processes under the schedule for steps and returns
// the kernel for analysis.
func spin(t *testing.T, n int, sched sim.Schedule, steps int64) *sim.Kernel {
	t.Helper()
	k := sim.New(n, sim.WithSchedule(sched))
	for p := 0; p < n; p++ {
		k.Spawn(p, "spin", func(pp prim.Proc) {
			for {
				pp.Step()
			}
		})
	}
	if _, err := k.Run(steps); err != nil {
		t.Fatalf("run: %v", err)
	}
	k.Shutdown()
	return k
}

// TestDLSScheduleRespectsPhiBound: no process's step gap may exceed the
// Φ speed bound (Phi*n global steps), for a spread of Φ values.
func TestDLSScheduleRespectsPhiBound(t *testing.T) {
	const n, steps = 3, 50_000
	for _, phi := range []int64{1, 2, 4, 8, 16} {
		for seed := int64(1); seed <= 3; seed++ {
			k := spin(t, n, NewSchedule(DLS{Phi: phi}, seed), steps)
			rep := sim.Analyze(k.Trace().Schedule(), n)
			limit := phi*int64(n) + 1 // forced at debt Phi*n-1, so gaps stay <= Phi*n
			for p := 0; p < n; p++ {
				if rep.Bound[p] == sim.Unbounded || rep.Bound[p] > limit {
					t.Errorf("phi=%d seed=%d: process %d bound %d exceeds %d", phi, seed, p, rep.Bound[p], limit)
				}
			}
		}
	}
}

// TestDLSScheduleStarves: with Φ large the adversary must actually use its
// freedom — some process's gap should approach the bound, or the strategy
// is just a random walk and the frontier's Φ axis would be flat.
func TestDLSScheduleStarves(t *testing.T) {
	const n, steps = 3, 50_000
	k := spin(t, n, NewSchedule(DLS{Phi: 8}, 7), steps)
	rep := sim.Analyze(k.Trace().Schedule(), n)
	var worst int64
	for p := 0; p < n; p++ {
		if rep.Bound[p] > worst {
			worst = rep.Bound[p]
		}
	}
	if worst < 8*int64(n)/2 {
		t.Errorf("phi=8: worst gap %d never approached the %d bound; the adversary is not starving anyone", worst, 8*n)
	}
}

// TestDLSScheduleDeterministic: same seed, same picks.
func TestDLSScheduleDeterministic(t *testing.T) {
	const n, steps = 3, 20_000
	a := spin(t, n, NewSchedule(DLS{Phi: 5}, 42), steps)
	b := spin(t, n, NewSchedule(DLS{Phi: 5}, 42), steps)
	sa, sb := a.Trace().Schedule(), b.Trace().Schedule()
	if len(sa) != len(sb) {
		t.Fatalf("schedule lengths differ: %d vs %d", len(sa), len(sb))
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("schedules diverge at step %d: %d vs %d", i, sa[i], sb[i])
		}
	}
}

// TestDLSSurvivesCrash: the victim (or any process) crashing must not wedge
// the schedule; the bound keeps holding for the survivors.
func TestDLSSurvivesCrash(t *testing.T) {
	const n, steps = 3, 30_000
	k := sim.New(n, sim.WithSchedule(NewSchedule(DLS{Phi: 4}, 3)))
	for p := 0; p < n; p++ {
		k.Spawn(p, "spin", func(pp prim.Proc) {
			for {
				pp.Step()
			}
		})
	}
	k.CrashAt(1, 10_000)
	if _, err := k.Run(steps); err != nil {
		t.Fatalf("run: %v", err)
	}
	k.Shutdown()
	rep := sim.Analyze(k.Trace().Schedule()[15_000:], n)
	for _, p := range []int{0, 2} {
		if rep.Bound[p] == sim.Unbounded || rep.Bound[p] > 4*int64(n)+1 {
			t.Errorf("post-crash bound for process %d is %d, want <= %d", p, rep.Bound[p], 4*n+1)
		}
	}
}

func TestNormalizeAndGuard(t *testing.T) {
	d := DLS{Phi: 0, Delta: -3}.Normalize()
	if d.Phi != 1 || d.Delta != 0 {
		t.Fatalf("normalize: got %+v", d)
	}
	if g := (DLS{Phi: 1, Delta: 0}).Guard(); g != 5 {
		t.Fatalf("guard(1,0) = %d, want 5 (3Φ+Δ+2)", g)
	}
	if g := (DLS{Phi: 4, Delta: 8}).Guard(); g != 22 {
		t.Fatalf("guard(4,8) = %d, want 22", g)
	}
}

// TestDelayFn: draws stay in [0, delta] and a zero bound yields no fn.
func TestDelayFn(t *testing.T) {
	if DelayFn(0, 1) != nil {
		t.Fatal("DelayFn(0) should be nil (no delay adversary)")
	}
	fn := DelayFn(5, 9)
	seen := map[int64]bool{}
	for i := 0; i < 200; i++ {
		v := fn()
		if v < 0 || v > 5 {
			t.Fatalf("draw %d out of [0,5]", v)
		}
		seen[v] = true
	}
	if len(seen) < 3 {
		t.Fatalf("draws not spread: %v", seen)
	}
}
