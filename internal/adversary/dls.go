// Package adversary implements parameterized timing adversaries for the
// exploration engine (internal/explore). The model is Dwork–Lynch–
// Stockmeyer partial synchrony as the EPFD96 TLA+ encoding states it: a
// relative speed bound Φ (no process runs more than Φ times faster than
// another) and a delay bound Δ (a register or fabric effect may be held
// back up to Δ steps). A (Φ,Δ) point pins one adversary exactly, so a
// fuzz plan can name it, replay it byte-exactly, and a frontier sweep can
// map how each oracle's verdicts degrade as the two axes grow — the
// paper's graceful-degradation story made measurable instead of a single
// ablation point.
package adversary

import (
	"fmt"
	"math/rand"

	"tbwf/internal/sim"
)

// DLS is one point of the partial-synchrony adversary space.
type DLS struct {
	// Phi is the relative speed bound: in any window where one process
	// takes Phi scheduling rounds, every alive process takes at least one
	// step. Phi = 1 degenerates to strict rotation; larger Phi lets the
	// adversary starve a victim for up to Phi*|alive| consecutive global
	// steps.
	Phi int64 `json:"phi"`
	// Delta is the effect-delay bound: a register write's effect (or a
	// fabric message, on the net substrate) may be held in flight for up
	// to Delta extra steps.
	Delta int64 `json:"delta"`
}

// Normalize clamps the policy into its valid domain (Phi >= 1, Delta >= 0).
func (d DLS) Normalize() DLS {
	if d.Phi < 1 {
		d.Phi = 1
	}
	if d.Delta < 0 {
		d.Delta = 0
	}
	return d
}

func (d DLS) String() string { return fmt.Sprintf("dls(phi=%d,delta=%d)", d.Phi, d.Delta) }

// Guard is the EPFD96 timeout guard 3Φ+Δ+2: the smallest fixed timeout a
// failure detector tuned for this adversary may safely use. The frontier
// monitor targets use it as the "correctly tuned for point X" constant —
// a monitor guarding for a milder point than the adversary's actual one
// is the ablation whose failures concentrate past X on the map.
func (d DLS) Guard() int64 { return 3*d.Phi + d.Delta + 2 }

// victim-starvation era bounds: the schedule starves one seeded victim at
// a time and rotates the role so every process is eventually the slow one
// (a fixed victim would just look like a crash to the oracles).
const (
	minEra = 64
	maxEra = 256
)

// dlsSchedule drives the kernel with a Φ-bounded starvation policy: a
// seeded victim is starved until its debt hits the Φ bound, at which point
// it is forced (so no process is ever frozen past Phi*|alive| consecutive
// global steps), and the victim role rotates in seeded eras.
type dlsSchedule struct {
	phi    int64
	rng    *rand.Rand
	frozen []int64 // consecutive global steps without a step, per process
	victim int
	eraEnd int64
}

// NewSchedule returns a sim.Schedule implementing the DLS speed bound for
// policy d. Every choice derives from seed and the observed alive sets, so
// runs replay exactly; the schedule is single-use (it carries per-run
// starvation state).
func NewSchedule(d DLS, seed int64) sim.Schedule {
	d = d.Normalize()
	return &dlsSchedule{
		phi:    d.Phi,
		rng:    rand.New(rand.NewSource(seed)),
		victim: -1,
	}
}

// Next implements sim.Schedule.
func (s *dlsSchedule) Next(step int64, alive []int) int {
	maxPid := alive[len(alive)-1]
	for len(s.frozen) <= maxPid {
		s.frozen = append(s.frozen, 0)
	}

	// The speed bound: with one step per global tick, a process starved
	// while |alive| others run Phi rounds has been frozen Phi*|alive|-1
	// steps; at that debt it must be scheduled (most-frozen first, then
	// smallest pid, so ties resolve deterministically).
	bound := s.phi*int64(len(alive)) - 1
	pick := -1
	for _, p := range alive {
		if s.frozen[p] >= bound && (pick == -1 || s.frozen[p] > s.frozen[pick]) {
			pick = p
		}
	}

	if pick == -1 {
		// No one is overdue: starve the era's victim, uniform among the
		// rest. Eras rotate the victim so every process periodically runs
		// at the slow end of the Φ ratio.
		if step >= s.eraEnd || s.victim == -1 {
			s.victim = alive[s.rng.Intn(len(alive))]
			s.eraEnd = step + minEra + s.rng.Int63n(maxEra-minEra)
		}
		pick = alive[s.rng.Intn(len(alive))]
		if len(alive) > 1 && pick == s.victim {
			pick = alive[s.rng.Intn(len(alive))]
			if pick == s.victim {
				// Two draws both hit the victim: deterministic sidestep.
				for _, p := range alive {
					if p != s.victim {
						pick = p
						break
					}
				}
			}
		}
	}

	for _, p := range alive {
		if p == pick {
			s.frozen[p] = 0
		} else {
			s.frozen[p]++
		}
	}
	return pick
}

// DelayFn returns a seeded effect-delay generator for a Δ bound: each call
// draws uniformly from [0, delta]. Wire it into sim.Kernel.SetEffectDelay
// so every register write's in-flight window is stretched by the draw.
func DelayFn(delta, seed int64) func() int64 {
	if delta <= 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	return func() int64 { return rng.Int63n(delta + 1) }
}
