package main

import "testing"

func TestBasicScenario(t *testing.T) {
	if err := run([]string{"-n", "3", "-steps", "400000", "-wanted", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestUntimelyAndCrash(t *testing.T) {
	if err := run([]string{"-n", "3", "-steps", "400000", "-untimely", "1", "-crash", "1@100000", "-seed", "7"}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsFlag(t *testing.T) {
	if err := run([]string{"-n", "2", "-steps", "100000", "-stats"}); err != nil {
		t.Fatal(err)
	}
}

func TestAbortableOmega(t *testing.T) {
	if err := run([]string{"-n", "2", "-steps", "600000", "-omega", "abortable", "-wanted", "1"}); err != nil {
		t.Fatal(err)
	}
}

// The -elector flag deploys the imported electors through the same stack,
// and the legacy -omega spelling still resolves (alias vocabulary).
func TestElectorFlag(t *testing.T) {
	if err := run([]string{"-n", "3", "-steps", "400000", "-elector", "nerio", "-wanted", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-n", "3", "-steps", "400000", "-elector", "reputation", "-wanted", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-n", "2", "-steps", "100000", "-omega", "atomic-registers", "-wanted", "0"}); err != nil {
		t.Fatal(err)
	}
	// Agreeing spellings coexist; -wanted 0 keeps the run short.
	if err := run([]string{"-n", "2", "-steps", "100000", "-elector", "atomic", "-omega", "atomic-registers", "-wanted", "0"}); err != nil {
		t.Fatal(err)
	}
}

func TestRejectsBadInputs(t *testing.T) {
	for _, args := range [][]string{
		{"-n", "1"},
		{"-n", "3", "-untimely", "3"},
		{"-omega", "nope"},
		{"-elector", "nope"},
		{"-elector", "nerio", "-omega", "abortable"}, // conflicting spellings
		{"-crash", "garbage"},
		{"-crash", "x@y"},
		{"-n", "3", "-crash", "7@100"},
		{"-n", "3", "-crash", "-1@100"},
	} {
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
