package main

import "testing"

func TestBasicScenario(t *testing.T) {
	if err := run([]string{"-n", "3", "-steps", "400000", "-wanted", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestUntimelyAndCrash(t *testing.T) {
	if err := run([]string{"-n", "3", "-steps", "400000", "-untimely", "1", "-crash", "1@100000", "-seed", "7"}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsFlag(t *testing.T) {
	if err := run([]string{"-n", "2", "-steps", "100000", "-stats"}); err != nil {
		t.Fatal(err)
	}
}

func TestAbortableOmega(t *testing.T) {
	if err := run([]string{"-n", "2", "-steps", "600000", "-omega", "abortable", "-wanted", "1"}); err != nil {
		t.Fatal(err)
	}
}

func TestRejectsBadInputs(t *testing.T) {
	for _, args := range [][]string{
		{"-n", "1"},
		{"-n", "3", "-untimely", "3"},
		{"-omega", "nope"},
		{"-crash", "garbage"},
		{"-crash", "x@y"},
		{"-n", "3", "-crash", "7@100"},
		{"-n", "3", "-crash", "-1@100"},
	} {
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}
