package main

import (
	"strings"
	"testing"
)

func TestBasicScenario(t *testing.T) {
	if err := run([]string{"-n", "3", "-steps", "400000", "-wanted", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestUntimelyAndCrash(t *testing.T) {
	if err := run([]string{"-n", "3", "-steps", "400000", "-untimely", "1", "-crash", "1@100000", "-seed", "7"}); err != nil {
		t.Fatal(err)
	}
}

func TestStatsFlag(t *testing.T) {
	if err := run([]string{"-n", "2", "-steps", "100000", "-stats"}); err != nil {
		t.Fatal(err)
	}
}

func TestAbortableOmega(t *testing.T) {
	if err := run([]string{"-n", "2", "-steps", "600000", "-omega", "abortable", "-wanted", "1"}); err != nil {
		t.Fatal(err)
	}
}

// The -elector flag deploys the imported electors through the same stack,
// and the legacy -omega spelling still resolves (alias vocabulary).
func TestElectorFlag(t *testing.T) {
	if err := run([]string{"-n", "3", "-steps", "400000", "-elector", "nerio", "-wanted", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-n", "3", "-steps", "400000", "-elector", "reputation", "-wanted", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-n", "2", "-steps", "100000", "-omega", "atomic-registers", "-wanted", "0"}); err != nil {
		t.Fatal(err)
	}
	// Agreeing spellings coexist; -wanted 0 keeps the run short.
	if err := run([]string{"-n", "2", "-steps", "100000", "-elector", "atomic", "-omega", "atomic-registers", "-wanted", "0"}); err != nil {
		t.Fatal(err)
	}
}

func TestRejectsBadInputs(t *testing.T) {
	for _, args := range [][]string{
		{"-n", "1"},
		{"-n", "3", "-untimely", "3"},
		{"-omega", "nope"},
		{"-elector", "nope"},
		{"-elector", "nerio", "-omega", "abortable"}, // conflicting spellings
		{"-crash", "garbage"},
		{"-crash", "x@y"},
		{"-n", "3", "-crash", "7@100"},
		{"-n", "3", "-crash", "-1@100"},
		{"-substrate", "rt"}, // the live runtime is tbwf-serve's substrate
	} {
		if err := run(args); err == nil {
			t.Errorf("args %v accepted", args)
		}
	}
}

// An unknown -substrate names the accepted vocabulary in the error.
func TestSubstrateFlagValidation(t *testing.T) {
	err := run([]string{"-substrate", "rt"})
	if err == nil {
		t.Fatal("run accepted -substrate rt")
	}
	for _, want := range []string{"rt", "sim", "net"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

// -substrate net deploys the same stack on quorum registers over the
// deterministic fabric; the run completes its targets like the sim run.
func TestNetSubstrateScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("quorum rounds cost fabric round-trips; skipped in -short mode")
	}
	if err := run([]string{"-n", "3", "-steps", "4000000", "-substrate", "net", "-wanted", "2", "-seed", "7"}); err != nil {
		t.Fatal(err)
	}
}
