// Command tbwf-sim runs a single TBWF scenario on the simulation kernel
// and prints a progress report: which processes were timely (observed
// bounds), how many operations each completed, and whether the TBWF
// condition held for the run.
//
// Usage:
//
//	tbwf-sim -n 4 -steps 3000000 -untimely 1 -elector atomic
//	tbwf-sim -n 3 -elector abortable -wanted 5
//	tbwf-sim -n 3 -elector nerio
//	tbwf-sim -n 3 -omega abortable         # legacy alias for -elector
//	tbwf-sim -n 3 -crash 1@500000
//	tbwf-sim -n 3 -substrate net -steps 20000000
//	                                       # ABD quorum registers on the fabric
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"tbwf/internal/core"
	"tbwf/internal/deploy"
	"tbwf/internal/elector"
	"tbwf/internal/net"
	"tbwf/internal/objtype"
	"tbwf/internal/omega"
	"tbwf/internal/prim"
	"tbwf/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tbwf-sim:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tbwf-sim", flag.ContinueOnError)
	n := fs.Int("n", 4, "number of processes")
	steps := fs.Int64("steps", 3_000_000, "step budget")
	untimely := fs.Int("untimely", 0, "how many low-id processes are untimely (growing gaps)")
	electorFlag := fs.String("elector", "",
		fmt.Sprintf("omega implementation: %s (default atomic)", strings.Join(elector.Names(), " | ")))
	omegaKind := fs.String("omega", "", "legacy alias for -elector")
	wanted := fs.Int64("wanted", 0, "ops per process (0 = hammer without target)")
	crash := fs.String("crash", "", "crash spec proc@step (e.g. 1@500000)")
	seed := fs.Int64("seed", 0, "random schedule seed (0 = round-robin base)")
	nonCanonical := fs.Bool("non-canonical", false, "skip the canonical wait (demonstrates monopolization)")
	stats := fs.Bool("stats", false, "print kernel execution statistics")
	substrate := fs.String("substrate", "sim",
		"execution substrate: sim | net (net = ABD quorum registers on the message fabric)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *substrate {
	case "sim", "net":
	default:
		return fmt.Errorf("unknown substrate %q (accepted values: sim, net)", *substrate)
	}
	if *n < 2 {
		return fmt.Errorf("need at least 2 processes")
	}
	if *untimely >= *n {
		return fmt.Errorf("untimely (%d) must be < n (%d)", *untimely, *n)
	}

	var base sim.Schedule = sim.RoundRobin()
	if *seed != 0 {
		base = sim.Random(*seed, nil)
	}
	avail := map[int]sim.Availability{}
	for p := 0; p < *untimely; p++ {
		avail[p] = sim.GrowingGaps(400, int64(600+200*p), 1.5)
	}
	k := sim.New(*n, sim.WithSchedule(sim.Restrict(base, avail)))

	if *crash != "" {
		parts := strings.SplitN(*crash, "@", 2)
		if len(parts) != 2 {
			return fmt.Errorf("bad crash spec %q, want proc@step", *crash)
		}
		proc, err1 := strconv.Atoi(parts[0])
		at, err2 := strconv.ParseInt(parts[1], 10, 64)
		if err1 != nil || err2 != nil {
			return fmt.Errorf("bad crash spec %q", *crash)
		}
		if proc < 0 || proc >= *n {
			return fmt.Errorf("crash spec %q: process out of range [0,%d)", *crash, *n)
		}
		k.CrashAt(proc, at)
	}

	builder, err := elector.Resolve(*electorFlag, *omegaKind)
	if err != nil {
		return err
	}

	sub := deploy.Sim(k)
	var fab *net.Fabric
	var netSub *net.Substrate
	if *substrate == "net" {
		// Every register becomes a majority-quorum ABD round over the
		// deterministic fabric; the fabric shares the -seed so the whole
		// run (schedule and network) replays from one number.
		fseed := *seed
		if fseed == 0 {
			fseed = 1
		}
		netSub, fab, err = net.NewFabric(k, net.FabricConfig{Seed: fseed, MinDelay: 1, MaxDelay: 3}, net.Config{})
		if err != nil {
			return err
		}
		sub = netSub
	}
	st, err := deploy.Build[int64, objtype.CounterOp, int64](sub, objtype.Counter{},
		deploy.BuildConfig{Elector: builder, NonCanonical: *nonCanonical})
	if err != nil {
		return err
	}
	obs := omega.NewObserver(st.Instances)
	k.AfterStep(obs.Sample)

	wantedSlice := make([]int64, *n)
	for p := 0; p < *n; p++ {
		p := p
		target := *wanted
		if target == 0 {
			wantedSlice[p] = 0
		} else {
			wantedSlice[p] = target
		}
		k.Spawn(p, fmt.Sprintf("client[%d]", p), func(pp prim.Proc) {
			for i := int64(0); target == 0 || i < target; i++ {
				st.Clients[p].Invoke(pp, objtype.CounterOp{Delta: 1})
			}
		})
	}

	res, err := k.Run(*steps)
	if err != nil {
		return err
	}
	k.Shutdown()

	timeliness, err := k.Trace().Analyze()
	if err != nil {
		return err
	}
	rep, err := core.Evaluate(timeliness, st.CompletedOps(), wantedSlice, 256)
	if err != nil {
		return err
	}
	schedNote := ""
	if s, ok := base.(sim.Seeded); ok {
		schedNote = fmt.Sprintf(", schedule seed %d", s.Seed())
	}
	fmt.Printf("ran %d steps (%s substrate, %s Ω∆%s)%s\n\n",
		res.Steps, *substrate, st.Elector.Name(), schedNote, idleNote(res))
	fmt.Print(rep)
	fmt.Printf("\nleaders at end: %v (stabilized at step %d, %d changes)\n",
		obs.Leaders(), obs.StabilizedAt(), obs.Changes())
	if fab != nil {
		// Kernel metrics only see shared-memory registers; on the net
		// substrate the interesting counters live on the fabric.
		rq, wq := netSub.Quorums()
		fmt.Printf("quorum registers: read %d / write %d of %d nodes, %d messages dropped\n",
			rq, wq, *n, fab.Dropped())
	} else {
		fmt.Printf("register ops: %d (%d aborted)\n", k.Metrics().TotalOps(), k.Metrics().TotalAborts())
	}
	if *wanted > 0 {
		fmt.Printf("TBWF verdict: %v\n", rep.TBWFHolds())
	}
	if *stats {
		s := k.Stats()
		fastPct := 0.0
		if s.Steps > 0 {
			fastPct = 100 * float64(s.FastPathSteps) / float64(s.Steps)
		}
		fmt.Printf("kernel: %d steps in %v (%.2fM steps/s), %d handoffs, %.1f%% fast-path, %d schedule misses, %d trace bytes\n",
			s.Steps, s.Elapsed.Round(1e6), s.StepsPerSec()/1e6, s.Handoffs, fastPct, s.ScheduleMisses, s.TraceBytes)
	}
	return nil
}

func idleNote(res sim.RunResult) string {
	if res.Idle {
		return ", all clients finished early"
	}
	return ""
}
