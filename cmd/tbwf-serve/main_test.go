package main

import (
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"testing"
	"time"
)

func TestRunRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-n", "1"},
		{"-object", "nope"},
		{"-pace", "banana"},
		{"-pace", "9:steady"}, // target out of range for -n 4
		{"-omega", "quantum"},
		{"-elector", "quantum"},
		{"-elector", "nerio", "-omega", "abortable"}, // conflicting spellings
		{"-badflag"},
		{"-substrate", "sim"},                     // the kernel is not a live substrate
		{"-net-peers", "127.0.0.1:1,127.0.0.1:2"}, // net options without -substrate net
		{"-net-listen", "127.0.0.1:0"},
		{"-n", "3", "-substrate", "net", "-net-peers", "127.0.0.1:1"}, // short peer list
		{"-n", "3", "-substrate", "net", "-net-peers", "a,b,c", "-net-node", "5"},
	}
	for _, args := range cases {
		if err := run(args, nil, nil); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
}

// A bad -substrate value must name the accepted vocabulary in the error.
func TestSubstrateFlagValidation(t *testing.T) {
	err := run([]string{"-substrate", "sim"}, nil, nil)
	if err == nil {
		t.Fatal("run accepted -substrate sim")
	}
	for _, want := range []string{"sim", "rt", "net"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

// -substrate net serves the object over loopback quorum registers and the
// stats document names the substrate.
func TestNetSubstrateServes(t *testing.T) {
	if testing.Short() {
		t.Skip("quorum-register serve needs elector stabilization over TCP; skipped in -short mode")
	}
	ready := make(chan string, 1)
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-n", "3", "-object", "counter",
			"-substrate", "net"}, ready, stop)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("run exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	defer func() {
		close(stop)
		<-done
	}()

	resp, err := http.Post("http://"+addr+"/v1/invoke", "application/json",
		strings.NewReader(`{"op":{"kind":"add","delta":2}}`))
	if err != nil {
		t.Fatal(err)
	}
	var inv struct {
		OK bool `json:"ok"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&inv); err != nil || !inv.OK {
		t.Fatalf("invoke: ok=%v err=%v", inv.OK, err)
	}
	resp.Body.Close()

	resp, err = http.Get("http://" + addr + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Substrate string `json:"substrate"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Substrate != "net" {
		t.Fatalf("stats substrate = %q, want net", stats.Substrate)
	}
}

// A bad -omega value must name the accepted vocabulary in the error, so
// an operator can self-correct without reading the source.
func TestOmegaFlagValidation(t *testing.T) {
	err := run([]string{"-omega", "quantum"}, nil, nil)
	if err == nil {
		t.Fatal("run accepted -omega quantum")
	}
	for _, want := range []string{"quantum", "atomic", "abortable"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error %q does not mention %q", err, want)
		}
	}
}

func TestRunServesAndStops(t *testing.T) {
	ready := make(chan string, 1)
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-n", "2", "-object", "counter",
			"-pace", "*:steady"}, ready, stop)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("run exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}

	resp, err := http.Post("http://"+addr+"/v1/invoke", "application/json",
		strings.NewReader(`{"op":{"kind":"add","delta":5}}`))
	if err != nil {
		t.Fatal(err)
	}
	var inv struct {
		OK bool `json:"ok"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&inv); err != nil || !inv.OK {
		t.Fatalf("invoke: ok=%v err=%v", inv.OK, err)
	}
	resp.Body.Close()

	resp, err = http.Get("http://" + addr + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Object string `json:"object"`
		N      int    `json:"n"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Object != "counter" || stats.N != 2 {
		t.Fatalf("stats = %+v", stats)
	}

	close(stop)
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not stop")
	}
}

// -elector selects the imported electors on the live runtime, and the
// stats document names the choice.
func TestElectorFlagServes(t *testing.T) {
	ready := make(chan string, 1)
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-n", "2", "-object", "counter",
			"-elector", "reputation", "-pace", "*:steady"}, ready, stop)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("run exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	defer func() {
		close(stop)
		<-done
	}()

	resp, err := http.Get("http://" + addr + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Omega   string `json:"omega"`
		Elector string `json:"elector"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Elector != "reputation" || stats.Omega != "reputation-penalty" {
		t.Fatalf("stats elector = %q / omega = %q", stats.Elector, stats.Omega)
	}
}

func TestRunReportsBusyAddr(t *testing.T) {
	ready := make(chan string, 1)
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-n", "2"}, ready, stop)
	}()
	addr := <-ready
	defer func() {
		close(stop)
		<-done
	}()

	err := run([]string{"-addr", addr, "-n", "2"}, nil, nil)
	if err == nil {
		t.Fatal("second server on the same address succeeded")
	}
	if !strings.Contains(fmt.Sprint(err), "address already in use") {
		t.Logf("got error %v (accepting any bind failure)", err)
	}
}

// Shard flags are validated before anything is deployed.
func TestShardFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-batch", "8"},             // batch without shards
		{"-shard-elector", "nerio"}, // elector list without shards
		{"-admission", "rate=100"},  // admission without shards
		{"-shards", "-1"},
		{"-shards", "2", "-shard-elector", "quantum"},
		{"-shards", "2", "-admission", "rate=no"},
		{"-shards", "2", "-admission", "burst=4"}, // burst without rate
		{"-n", "3", "-shards", "2", "-substrate", "net"},
	}
	for _, args := range cases {
		if err := run(args, nil, nil); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
}

// A sharded serve answers the keyed API and reports its shard count.
func TestShardedServe(t *testing.T) {
	ready := make(chan string, 1)
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-n", "2", "-shards", "2",
			"-batch", "4", "-shard-elector", "atomic,nerio"}, ready, stop)
	}()
	addr := <-ready
	base := "http://" + addr

	body := strings.NewReader(`{"key":"k1","op":{"kind":"add","delta":5}}`)
	resp, err := http.Post(base+"/v1/kv/invoke", "application/json", body)
	if err != nil {
		t.Fatal(err)
	}
	var inv struct {
		OK    bool `json:"ok"`
		Shard int  `json:"shard"`
		Resp  struct {
			Prev int64 `json:"prev"`
		} `json:"resp"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&inv); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || !inv.OK || inv.Resp.Prev != 0 {
		t.Fatalf("kv invoke: %d %+v", resp.StatusCode, inv)
	}

	resp, err = http.Get(base + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats struct {
		Shards  int      `json:"shards"`
		KVKinds []string `json:"kv_kinds"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Shards != 2 || len(stats.KVKinds) != 4 {
		t.Fatalf("stats: %+v", stats)
	}

	close(stop)
	select {
	case err := <-done:
		if err != nil {
			t.Fatal(err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("server did not stop")
	}
}

// -pprof serves the profiler's index on a side listener, separate from
// the service address, and shuts it down with the service.
func TestPprofSideListener(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	pprofAddr := ln.Addr().String()
	ln.Close() // free the port for run to rebind

	ready := make(chan string, 1)
	stop := make(chan struct{})
	done := make(chan error, 1)
	go func() {
		done <- run([]string{"-addr", "127.0.0.1:0", "-n", "2", "-pprof", pprofAddr}, ready, stop)
	}()
	var addr string
	select {
	case addr = <-ready:
	case err := <-done:
		t.Fatalf("run exited early: %v", err)
	case <-time.After(10 * time.Second):
		t.Fatal("server never became ready")
	}
	defer func() {
		close(stop)
		if err := <-done; err != nil {
			t.Errorf("run: %v", err)
		}
	}()

	resp, err := http.Get("http://" + pprofAddr + "/debug/pprof/")
	if err != nil {
		t.Fatalf("pprof index: %v", err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("pprof index: status %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "goroutine") {
		t.Fatalf("pprof index does not list profiles: %.200s", body)
	}

	// The debug handlers must NOT be mounted on the service address.
	resp, err = http.Get("http://" + addr + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode == http.StatusOK {
		t.Fatal("service address serves /debug/pprof/ — profiler leaked onto the service mux")
	}
}
