// Command tbwf-serve deploys a TBWF-replicated object on the real-time
// substrate and serves it over HTTP (see internal/serve for the API).
//
// Usage:
//
//	tbwf-serve                          # 4-replica counter on :8080
//	tbwf-serve -n 6 -object jobqueue
//	tbwf-serve -pace '*:steady:10us;2:growing:400:2ms:1.5'
//	tbwf-serve -addr 127.0.0.1:9090 -queue-depth 128
//	tbwf-serve -elector abortable          # Theorem 15's Ω∆ from abortable registers
//	tbwf-serve -elector nerio              # epoch/lease elector (bake-off)
//	tbwf-serve -omega abortable            # legacy alias for -elector
//	tbwf-serve -n 3 -substrate net         # ABD quorum registers over loopback TCP
//	tbwf-serve -n 3 -substrate net \
//	  -net-peers 127.0.0.1:7101,127.0.0.1:7102,127.0.0.1:7103 -net-node 0
//	                                       # one replica per OS process (run 3x)
//	tbwf-serve -shards 8                   # sharded keyspace on /v1/kv/*
//	tbwf-serve -shards 8 -batch 32 -shard-elector atomic,nerio \
//	  -admission rate=5000,burst=100,inflight=4096
//
// The pacing spec assigns each process's initial step profile; the
// /v1/fault endpoint retunes a live process afterwards (and /v1/netfault
// severs replica links on the net substrate). SIGINT/SIGTERM shut the
// service down cleanly.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"tbwf/internal/elector"
	"tbwf/internal/serve"
)

func main() {
	if err := run(os.Args[1:], nil, nil); err != nil {
		fmt.Fprintln(os.Stderr, "tbwf-serve:", err)
		os.Exit(1)
	}
}

// run starts the service and blocks until stop closes or a termination
// signal arrives. If ready is non-nil the bound address is sent on it once
// the listener is up (tests bind :0 and read the real port back).
func run(args []string, ready chan<- string, stop <-chan struct{}) error {
	fs := flag.NewFlagSet("tbwf-serve", flag.ContinueOnError)
	n := fs.Int("n", 4, "number of replicas (processes), at least 2")
	addr := fs.String("addr", "127.0.0.1:8080", "listen address")
	object := fs.String("object", "counter",
		fmt.Sprintf("object to deploy, one of %s", strings.Join(serve.Objects(), ", ")))
	pace := fs.String("pace", "",
		"initial pacing, e.g. '*:steady:10us;2:growing:400:2ms:1.5' (empty: full speed)")
	queueDepth := fs.Int("queue-depth", 64, "per-replica bounded request queue depth")
	electorFlag := fs.String("elector", "",
		fmt.Sprintf("omega implementation: %s (default atomic)", strings.Join(elector.Names(), " | ")))
	omegaKind := fs.String("omega", "", "legacy alias for -elector")
	substrate := fs.String("substrate", "rt",
		"execution substrate: rt | net (net = ABD quorum registers over TCP)")
	netPeers := fs.String("net-peers", "",
		"comma-separated replica node addresses (net substrate; empty: in-process loopback nodes)")
	netNode := fs.Int("net-node", 0, "this process's replica index (net substrate, with -net-peers)")
	netListen := fs.String("net-listen", "",
		"replica node listen address (net substrate, with -net-peers; default: its -net-peers entry)")
	shards := fs.Int("shards", 0,
		"sharded keyspace: number of independent TBWF stacks behind /v1/kv/* (0: disabled)")
	shardElector := fs.String("shard-elector", "",
		"comma-separated elector list cycled across shards (empty: every shard uses -elector)")
	batch := fs.Int("batch", 0,
		"max keyed ops folded into one QA round per worker turn (default 16; 1 disables batching)")
	admission := fs.String("admission", "",
		"keyed admission policy, e.g. 'rate=5000,burst=100,inflight=4096' (empty: admit everything)")
	pprofAddr := fs.String("pprof", "",
		"serve net/http/pprof on this side address, e.g. 127.0.0.1:6060 (empty: disabled)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch *substrate {
	case "rt", "net":
	default:
		return fmt.Errorf("unknown substrate %q (accepted values: rt, net)", *substrate)
	}
	var peers []string
	if *netPeers != "" {
		for _, p := range strings.Split(*netPeers, ",") {
			if p = strings.TrimSpace(p); p != "" {
				peers = append(peers, p)
			}
		}
	}
	if *substrate != "net" && (len(peers) > 0 || *netListen != "") {
		return fmt.Errorf("-net-peers/-net-listen need -substrate net")
	}

	pacing, err := serve.ParsePacing(*pace, *n)
	if err != nil {
		return err
	}
	srv, err := serve.New(serve.Config{
		N:          *n,
		Object:     *object,
		Elector:    *electorFlag,
		Omega:      *omegaKind,
		QueueDepth: *queueDepth,
		Pacing:     pacing,
		Substrate:  *substrate,
		Net: serve.NetOptions{
			Peers:  peers,
			Node:   *netNode,
			Listen: *netListen,
		},
		Shards:       *shards,
		ShardElector: *shardElector,
		MaxBatch:     *batch,
		Admission:    *admission,
	})
	if err != nil {
		return err
	}

	var pprofSrv *http.Server
	if *pprofAddr != "" {
		pln, err := net.Listen("tcp", *pprofAddr)
		if err != nil {
			srv.Stop()
			return fmt.Errorf("pprof listener: %w", err)
		}
		// A separate listener and mux: the profiler must not share the
		// service port (it would skew the very latency being profiled and
		// expose debug handlers on the service address).
		mux := http.NewServeMux()
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
		pprofSrv = &http.Server{Handler: mux}
		go pprofSrv.Serve(pln)
		fmt.Fprintf(os.Stderr, "tbwf-serve: pprof on http://%s/debug/pprof/\n", pln.Addr())
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		if pprofSrv != nil {
			pprofSrv.Close()
		}
		srv.Stop()
		return err
	}
	if ready != nil {
		ready <- ln.Addr().String()
	}
	fmt.Fprintf(os.Stderr, "tbwf-serve: %s with %d replicas on http://%s (substrate %s)\n",
		*object, *n, ln.Addr(), *substrate)

	httpSrv := &http.Server{Handler: srv}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	defer signal.Stop(sig)

	select {
	case s := <-sig:
		fmt.Fprintf(os.Stderr, "tbwf-serve: %v, shutting down\n", s)
	case <-stop:
	case err := <-serveErr:
		if pprofSrv != nil {
			pprofSrv.Close()
		}
		srv.Stop()
		return err
	}
	httpSrv.Close()
	if pprofSrv != nil {
		pprofSrv.Close()
	}
	return srv.Stop()
}
