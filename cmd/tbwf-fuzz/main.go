// Command tbwf-fuzz explores the schedule space of the repo's
// constructions: it sweeps seeded adversarial schedules (random walks,
// phase-locking patterns, preemption-bounded runs, and DLS timing
// adversaries with explicit (Φ,Δ) bounds), crash injections, and
// abort/effect policy tapes across the registered fuzz targets, checks
// every run with the targets' property oracles, and writes each failure as
// a JSON artifact that replays byte-exactly.
//
// Beyond the blind sweep it has two guided modes: -guided runs the
// coverage-feedback loop (novel state signatures spawn mutated neighbor
// plans), and -frontier sweeps an explicit (Φ,Δ) grid under the DLS
// adversary and emits the per-cell, per-oracle pass/fail frontier map.
//
// Usage:
//
//	tbwf-fuzz -list
//	tbwf-fuzz -target all -seeds 32 -budget 200000 -out artifacts/
//	tbwf-fuzz -target heartbeat-single -seeds 8 -shrink
//	tbwf-fuzz -target qa-counter -guided -seeds 64
//	tbwf-fuzz -target frontier/monitor-fixed -frontier 'phi=1..8,delta=0,8,32' -frontier-out BENCH_frontier.json
//	tbwf-fuzz -replay artifacts/heartbeat-single-seed3.json
//	tbwf-fuzz -replay artifacts/heartbeat-single-seed3.json -shrink
//
// Exit status is non-zero when any oracle failed (or a replayed artifact
// did not reproduce), so the bounded CI smoke run doubles as a regression
// gate. -frontier is the exception: ablated targets failing across the
// grid is the data the sweep exists to collect, so only infrastructure
// errors are fatal there.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"tbwf/internal/exp"
	"tbwf/internal/explore"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tbwf-fuzz:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tbwf-fuzz", flag.ContinueOnError)
	target := fs.String("target", "all", `target name, or "all" for every non-ablated target`)
	budget := fs.Int64("budget", 0, "step budget per run (0 = per-target default)")
	seeds := fs.Int("seeds", 16, "seeds per target")
	seed0 := fs.Int64("seed0", 1, "first seed of the sweep")
	parallel := fs.Int("parallel", 0, "worker-pool size (0 = one per CPU)")
	shrink := fs.Bool("shrink", false, "minimize failure artifacts (with -replay: shrink the artifact)")
	shrinkAttempts := fs.Int("shrink-attempts", 0, "re-executions per shrink (0 = default)")
	outDir := fs.String("out", "", "directory for failure artifacts (empty = don't write)")
	replay := fs.String("replay", "", "replay an artifact file instead of fuzzing")
	list := fs.Bool("list", false, "list registered targets and exit")
	includeAblated := fs.Bool("include-ablated", false, `with -target all: include the ablated (expected-failing) targets`)
	guided := fs.Bool("guided", false, "coverage-guided mode: novel state signatures spawn mutated plans (-seeds is the total plan budget)")
	mutants := fs.Int("mutants", 0, "with -guided: mutants spawned per novel run (0 = default)")
	frontier := fs.String("frontier", "", `sweep a (phi,delta) grid under the DLS adversary, e.g. 'phi=1..8,delta=0,8,32' (-seeds runs per cell)`)
	frontierOut := fs.String("frontier-out", "", "with -frontier: write the JSON frontier document here")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := validateParallel(fs, *parallel); err != nil {
		return err
	}

	if *list {
		for _, t := range explore.Targets() {
			mark := " "
			if t.Ablated {
				mark = "!"
			}
			fmt.Fprintf(out, "%s %-26s n=%d steps=%-8d oracles=%-38s %s\n",
				mark, t.Name, t.N, t.Steps, strings.Join(t.Oracles, ","), t.Desc)
		}
		fmt.Fprintln(out, "\ntargets marked ! are ablated: deliberately broken, expected to fail")
		return nil
	}

	if *replay != "" {
		return replayArtifact(*replay, *shrink, *shrinkAttempts, out)
	}

	targets, err := selectTargets(*target, *includeAblated || *frontier != "")
	if err != nil {
		return err
	}
	if *frontier != "" {
		return runFrontier(targets, *frontier, *seeds, *seed0, *budget, *parallel, *frontierOut, out)
	}
	if *guided {
		return runGuided(targets, *seeds, *seed0, *budget, *parallel, *mutants, *outDir, out)
	}
	sum, err := explore.Fuzz(explore.Config{
		Targets:        targets,
		Seeds:          *seeds,
		BaseSeed:       *seed0,
		Budget:         *budget,
		Parallel:       *parallel,
		Shrink:         *shrink,
		ShrinkAttempts: *shrinkAttempts,
	})
	if err != nil {
		return err
	}

	t := &exp.Table{
		ID:      "FUZZ",
		Title:   fmt.Sprintf("schedule-space sweep: %d targets × %d seeds (seed0=%d)", len(targets), *seeds, *seed0),
		Columns: []string{"target", "runs", "failures", "vacuous"},
	}
	for _, ts := range sum.PerTarget {
		t.AddRow(ts.Target, ts.Runs, ts.Failures, ts.Vacuous)
	}
	if *budget > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("step budget %d per run (overrides target defaults)", *budget))
	}
	t.Notes = append(t.Notes, fmt.Sprintf("coverage: %d trace hashes, %d state signatures",
		sum.Coverage.TraceHashes, sum.Coverage.StateSigs))
	fmt.Fprintln(out, t)

	for _, f := range sum.Findings {
		v := f.Artifact.Verdicts
		first := ""
		for _, vd := range v {
			if !vd.OK {
				first = vd.String()
				break
			}
		}
		fmt.Fprintf(out, "FAIL %s seed %d: %s\n", f.Target, f.Seed, first)
		if f.ShrinkStats != nil {
			fmt.Fprintf(out, "     shrunk: %s\n", f.ShrinkStats)
		}
	}
	for _, e := range sum.Errors {
		fmt.Fprintf(out, "ERROR %s\n", e)
	}

	if *outDir != "" && len(sum.Findings) > 0 {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
		for _, f := range sum.Findings {
			if err := writeArtifact(*outDir, fmt.Sprintf("%s-seed%d.json", f.Target, f.Seed), f.Artifact); err != nil {
				return err
			}
			if f.Shrunk != nil {
				if err := writeArtifact(*outDir, fmt.Sprintf("%s-seed%d.min.json", f.Target, f.Seed), f.Shrunk); err != nil {
					return err
				}
			}
		}
		fmt.Fprintf(out, "wrote %d artifact(s) to %s\n", len(sum.Findings), *outDir)
	}

	if sum.Failures > 0 || len(sum.Errors) > 0 {
		return fmt.Errorf("%d of %d runs failed", sum.Failures+len(sum.Errors), sum.Runs)
	}
	fmt.Fprintf(out, "all %d runs passed\n", sum.Runs)
	return nil
}

// selectTargets resolves the -target flag: a registry name, or "all".
func selectTargets(name string, includeAblated bool) ([]explore.Target, error) {
	if name == "all" {
		var out []explore.Target
		for _, t := range explore.Targets() {
			if t.Ablated && !includeAblated {
				continue
			}
			out = append(out, t)
		}
		return out, nil
	}
	var out []explore.Target
	for _, part := range strings.Split(name, ",") {
		t, err := explore.TargetByName(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// replayArtifact re-executes a stored artifact and verifies the replay
// reproduces the recorded verdicts and trace hash; with shrink set it also
// minimizes the artifact and writes <path>.min.json.
func replayArtifact(path string, shrink bool, shrinkAttempts int, out io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	a, err := explore.DecodeArtifact(data)
	if err != nil {
		return err
	}
	res, err := explore.Replay(a)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "replayed %s: target %s seed %d, %d steps\n", filepath.Base(path), a.Plan.Target, a.Plan.Seed, res.Outcome.Steps)
	for _, v := range res.Outcome.Verdicts {
		fmt.Fprintf(out, "  %s\n", v)
	}
	fmt.Fprintf(out, "trace hash: %s (recorded %s)\n", res.Outcome.TraceHash, a.TraceHash)
	if !res.Exact() {
		return fmt.Errorf("replay diverged from the artifact (hash match: %v, verdicts match: %v)", res.HashMatch, res.VerdictsMatch)
	}
	fmt.Fprintln(out, "replay reproduces the artifact byte-exactly")

	if shrink {
		min, stats, err := explore.Shrink(a, shrinkAttempts)
		if err != nil {
			return fmt.Errorf("shrink: %w", err)
		}
		minPath := strings.TrimSuffix(path, ".json") + ".min.json"
		enc, err := min.Encode()
		if err != nil {
			return err
		}
		if err := os.WriteFile(minPath, enc, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "shrunk: %s\nwrote %s\n", stats, minPath)
	}
	return nil
}

// runGuided runs the coverage-feedback loop on each target in turn and
// reports the corpus/coverage counters alongside any findings.
func runGuided(targets []explore.Target, plans int, seed0, budget int64, parallel, mutants int, outDir string, out io.Writer) error {
	failures, errors := 0, 0
	for _, tgt := range targets {
		res, err := explore.FuzzGuided(explore.GuidedConfig{
			Target:        tgt,
			Plans:         plans,
			BaseSeed:      seed0,
			Budget:        budget,
			Parallel:      parallel,
			MutantsPerHit: mutants,
		})
		if err != nil {
			return err
		}
		c := res.Coverage
		fmt.Fprintf(out, "%-26s %d runs (%d mutants), %d failures; coverage: %d trace hashes, %d state signatures, corpus %d\n",
			tgt.Name, res.Runs, c.Mutants, res.Failures, c.TraceHashes, c.StateSigs, c.Corpus)
		for _, f := range res.Findings {
			if v := f.Artifact.FirstFailingVerdict(); v != "" {
				fmt.Fprintf(out, "FAIL %s seed %d: %s\n", f.Target, f.Seed, v)
			}
			if outDir != "" {
				if err := os.MkdirAll(outDir, 0o755); err != nil {
					return err
				}
				if err := writeArtifact(outDir, fmt.Sprintf("%s-seed%d.json", f.Target, f.Seed), f.Artifact); err != nil {
					return err
				}
			}
		}
		for _, e := range res.Errors {
			fmt.Fprintf(out, "ERROR %s\n", e)
		}
		failures += res.Failures
		errors += len(res.Errors)
	}
	if failures > 0 || errors > 0 {
		return fmt.Errorf("%d failures, %d errors", failures, errors)
	}
	fmt.Fprintln(out, "all guided runs passed")
	return nil
}

// runFrontier sweeps the (Φ,Δ) grid and prints the rendered map. Oracle
// failures are data here, not a failed exit — ablated targets failing at
// harsh cells is the frontier — so only infrastructure errors are fatal.
func runFrontier(targets []explore.Target, spec string, seeds int, seed0, budget int64, parallel int, outPath string, out io.Writer) error {
	phis, deltas, err := explore.ParseFrontierSpec(spec)
	if err != nil {
		return err
	}
	doc, err := explore.MapFrontier(explore.FrontierConfig{
		Targets:  targets,
		Phis:     phis,
		Deltas:   deltas,
		Seeds:    seeds,
		BaseSeed: seed0,
		Budget:   budget,
		Parallel: parallel,
	})
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "frontier sweep: %d targets × %d cells × %d seeds (dls adversary)\n\n",
		len(doc.Targets), len(phis)*len(deltas), seeds)
	fmt.Fprintln(out, explore.RenderFrontierMap(doc))
	if outPath != "" {
		enc, err := doc.Encode()
		if err != nil {
			return err
		}
		if err := os.WriteFile(outPath, enc, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "wrote %s\n", outPath)
	}
	errs := 0
	for _, tf := range doc.Targets {
		for _, c := range tf.Cells {
			errs += c.Errors
		}
	}
	if errs > 0 {
		return fmt.Errorf("%d runs failed to execute", errs)
	}
	return nil
}

func writeArtifact(dir, name string, a *explore.Artifact) error {
	enc, err := a.Encode()
	if err != nil {
		return err
	}
	// Target names may contain '/' (net/partition, frontier/monitor-fixed);
	// flatten them so the artifact lands in dir itself.
	return os.WriteFile(filepath.Join(dir, strings.ReplaceAll(name, "/", "-")), enc, 0o644)
}

// validateParallel rejects an explicitly-set non-positive -parallel. The
// unset default (0) keeps its one-worker-per-CPU meaning; asking for zero
// or negative workers is always a mistake, so it fails loudly instead of
// being silently remapped.
func validateParallel(fs *flag.FlagSet, parallel int) error {
	set := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "parallel" {
			set = true
		}
	})
	if set && parallel <= 0 {
		return fmt.Errorf("-parallel must be positive, got %d (omit the flag for one worker per CPU)", parallel)
	}
	return nil
}
