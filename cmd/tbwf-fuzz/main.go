// Command tbwf-fuzz explores the schedule space of the repo's
// constructions: it sweeps seeded adversarial schedules (random walks,
// phase-locking patterns, preemption-bounded runs), crash injections, and
// abort/effect policy tapes across the registered fuzz targets, checks
// every run with the targets' property oracles, and writes each failure as
// a JSON artifact that replays byte-exactly.
//
// Usage:
//
//	tbwf-fuzz -list
//	tbwf-fuzz -target all -seeds 32 -budget 200000 -out artifacts/
//	tbwf-fuzz -target heartbeat-single -seeds 8 -shrink
//	tbwf-fuzz -replay artifacts/heartbeat-single-seed3.json
//	tbwf-fuzz -replay artifacts/heartbeat-single-seed3.json -shrink
//
// Exit status is non-zero when any oracle failed (or a replayed artifact
// did not reproduce), so the bounded CI smoke run doubles as a regression
// gate.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"tbwf/internal/exp"
	"tbwf/internal/explore"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tbwf-fuzz:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("tbwf-fuzz", flag.ContinueOnError)
	target := fs.String("target", "all", `target name, or "all" for every non-ablated target`)
	budget := fs.Int64("budget", 0, "step budget per run (0 = per-target default)")
	seeds := fs.Int("seeds", 16, "seeds per target")
	seed0 := fs.Int64("seed0", 1, "first seed of the sweep")
	parallel := fs.Int("parallel", 0, "worker-pool size (0 = one per CPU)")
	shrink := fs.Bool("shrink", false, "minimize failure artifacts (with -replay: shrink the artifact)")
	shrinkAttempts := fs.Int("shrink-attempts", 0, "re-executions per shrink (0 = default)")
	outDir := fs.String("out", "", "directory for failure artifacts (empty = don't write)")
	replay := fs.String("replay", "", "replay an artifact file instead of fuzzing")
	list := fs.Bool("list", false, "list registered targets and exit")
	includeAblated := fs.Bool("include-ablated", false, `with -target all: include the ablated (expected-failing) targets`)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := validateParallel(fs, *parallel); err != nil {
		return err
	}

	if *list {
		for _, t := range explore.Targets() {
			mark := " "
			if t.Ablated {
				mark = "!"
			}
			fmt.Fprintf(out, "%s %-26s n=%d steps=%-8d %s\n", mark, t.Name, t.N, t.Steps, t.Desc)
		}
		fmt.Fprintln(out, "\ntargets marked ! are ablated: deliberately broken, expected to fail")
		return nil
	}

	if *replay != "" {
		return replayArtifact(*replay, *shrink, *shrinkAttempts, out)
	}

	targets, err := selectTargets(*target, *includeAblated)
	if err != nil {
		return err
	}
	sum, err := explore.Fuzz(explore.Config{
		Targets:        targets,
		Seeds:          *seeds,
		BaseSeed:       *seed0,
		Budget:         *budget,
		Parallel:       *parallel,
		Shrink:         *shrink,
		ShrinkAttempts: *shrinkAttempts,
	})
	if err != nil {
		return err
	}

	t := &exp.Table{
		ID:      "FUZZ",
		Title:   fmt.Sprintf("schedule-space sweep: %d targets × %d seeds (seed0=%d)", len(targets), *seeds, *seed0),
		Columns: []string{"target", "runs", "failures", "vacuous"},
	}
	for _, ts := range sum.PerTarget {
		t.AddRow(ts.Target, ts.Runs, ts.Failures, ts.Vacuous)
	}
	if *budget > 0 {
		t.Notes = append(t.Notes, fmt.Sprintf("step budget %d per run (overrides target defaults)", *budget))
	}
	fmt.Fprintln(out, t)

	for _, f := range sum.Findings {
		v := f.Artifact.Verdicts
		first := ""
		for _, vd := range v {
			if !vd.OK {
				first = vd.String()
				break
			}
		}
		fmt.Fprintf(out, "FAIL %s seed %d: %s\n", f.Target, f.Seed, first)
		if f.ShrinkStats != nil {
			fmt.Fprintf(out, "     shrunk: %s\n", f.ShrinkStats)
		}
	}
	for _, e := range sum.Errors {
		fmt.Fprintf(out, "ERROR %s\n", e)
	}

	if *outDir != "" && len(sum.Findings) > 0 {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
		for _, f := range sum.Findings {
			if err := writeArtifact(*outDir, fmt.Sprintf("%s-seed%d.json", f.Target, f.Seed), f.Artifact); err != nil {
				return err
			}
			if f.Shrunk != nil {
				if err := writeArtifact(*outDir, fmt.Sprintf("%s-seed%d.min.json", f.Target, f.Seed), f.Shrunk); err != nil {
					return err
				}
			}
		}
		fmt.Fprintf(out, "wrote %d artifact(s) to %s\n", len(sum.Findings), *outDir)
	}

	if sum.Failures > 0 || len(sum.Errors) > 0 {
		return fmt.Errorf("%d of %d runs failed", sum.Failures+len(sum.Errors), sum.Runs)
	}
	fmt.Fprintf(out, "all %d runs passed\n", sum.Runs)
	return nil
}

// selectTargets resolves the -target flag: a registry name, or "all".
func selectTargets(name string, includeAblated bool) ([]explore.Target, error) {
	if name == "all" {
		var out []explore.Target
		for _, t := range explore.Targets() {
			if t.Ablated && !includeAblated {
				continue
			}
			out = append(out, t)
		}
		return out, nil
	}
	var out []explore.Target
	for _, part := range strings.Split(name, ",") {
		t, err := explore.TargetByName(strings.TrimSpace(part))
		if err != nil {
			return nil, err
		}
		out = append(out, t)
	}
	return out, nil
}

// replayArtifact re-executes a stored artifact and verifies the replay
// reproduces the recorded verdicts and trace hash; with shrink set it also
// minimizes the artifact and writes <path>.min.json.
func replayArtifact(path string, shrink bool, shrinkAttempts int, out io.Writer) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	a, err := explore.DecodeArtifact(data)
	if err != nil {
		return err
	}
	res, err := explore.Replay(a)
	if err != nil {
		return err
	}
	fmt.Fprintf(out, "replayed %s: target %s seed %d, %d steps\n", filepath.Base(path), a.Plan.Target, a.Plan.Seed, res.Outcome.Steps)
	for _, v := range res.Outcome.Verdicts {
		fmt.Fprintf(out, "  %s\n", v)
	}
	fmt.Fprintf(out, "trace hash: %s (recorded %s)\n", res.Outcome.TraceHash, a.TraceHash)
	if !res.Exact() {
		return fmt.Errorf("replay diverged from the artifact (hash match: %v, verdicts match: %v)", res.HashMatch, res.VerdictsMatch)
	}
	fmt.Fprintln(out, "replay reproduces the artifact byte-exactly")

	if shrink {
		min, stats, err := explore.Shrink(a, shrinkAttempts)
		if err != nil {
			return fmt.Errorf("shrink: %w", err)
		}
		minPath := strings.TrimSuffix(path, ".json") + ".min.json"
		enc, err := min.Encode()
		if err != nil {
			return err
		}
		if err := os.WriteFile(minPath, enc, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(out, "shrunk: %s\nwrote %s\n", stats, minPath)
	}
	return nil
}

func writeArtifact(dir, name string, a *explore.Artifact) error {
	enc, err := a.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, name), enc, 0o644)
}

// validateParallel rejects an explicitly-set non-positive -parallel. The
// unset default (0) keeps its one-worker-per-CPU meaning; asking for zero
// or negative workers is always a mistake, so it fails loudly instead of
// being silently remapped.
func validateParallel(fs *flag.FlagSet, parallel int) error {
	set := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "parallel" {
			set = true
		}
	})
	if set && parallel <= 0 {
		return fmt.Errorf("-parallel must be positive, got %d (omit the flag for one worker per CPU)", parallel)
	}
	return nil
}
