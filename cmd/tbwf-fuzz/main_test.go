package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// TestFuzzThenReplayRoundTrip drives the CLI end to end: fuzz the
// always-failing selftest target into an artifact directory, then replay
// the artifact (which must reproduce byte-exactly) and shrink it.
func TestFuzzThenReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	var out strings.Builder
	err := run([]string{
		"-target", "selftest-panic",
		"-seeds", "2",
		"-budget", "10000",
		"-out", dir,
	}, &out)
	if err == nil {
		t.Fatalf("fuzzing selftest-panic exited zero; output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "FAIL selftest-panic") {
		t.Fatalf("missing FAIL line in output:\n%s", out.String())
	}

	matches, globErr := filepath.Glob(filepath.Join(dir, "selftest-panic-seed*.json"))
	if globErr != nil || len(matches) == 0 {
		t.Fatalf("no artifacts written to %s (%v)", dir, globErr)
	}

	out.Reset()
	if err := run([]string{"-replay", matches[0], "-shrink", "-shrink-attempts", "30"}, &out); err != nil {
		t.Fatalf("replay failed: %v\noutput:\n%s", err, out.String())
	}
	if !strings.Contains(out.String(), "replay reproduces the artifact byte-exactly") {
		t.Fatalf("replay did not report exact reproduction:\n%s", out.String())
	}
	minPath := strings.TrimSuffix(matches[0], ".json") + ".min.json"
	if _, err := os.Stat(minPath); err != nil {
		t.Fatalf("shrunk artifact not written: %v", err)
	}

	// The shrunk artifact replays too.
	out.Reset()
	if err := run([]string{"-replay", minPath}, &out); err != nil {
		t.Fatalf("shrunk replay failed: %v\noutput:\n%s", err, out.String())
	}
}

// TestCleanSweepExitsZero: a passing target at a small budget exits zero
// and prints the summary table.
func TestCleanSweepExitsZero(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-target", "qa-counter", "-seeds", "2", "-budget", "60000"}, &out); err != nil {
		t.Fatalf("clean sweep returned %v\noutput:\n%s", err, out.String())
	}
	for _, want := range []string{"FUZZ", "qa-counter", "all 2 runs passed"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("output missing %q:\n%s", want, out.String())
		}
	}
}

func TestListAndErrors(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-list"}, &out); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"qa-counter", "! heartbeat-single", "marked ! are ablated",
		"oracles=lincheck", "oracles=log-accounting,tbwf-progress", "frontier/monitor-adaptive"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("-list output missing %q:\n%s", want, out.String())
		}
	}

	if err := run([]string{"-target", "no-such-target"}, &out); err == nil {
		t.Fatal("unknown target accepted")
	}
	if err := run([]string{"-replay", filepath.Join(t.TempDir(), "missing.json")}, &out); err == nil {
		t.Fatal("missing replay file accepted")
	}
}

// TestReplayRejectsWrongVersionUpFront: a stale artifact is refused with
// the expected-vs-found version message, not a decode error or panic.
func TestReplayRejectsWrongVersionUpFront(t *testing.T) {
	path := filepath.Join(t.TempDir(), "stale.json")
	if err := os.WriteFile(path, []byte(`{"version":1,"plan":{"target":"qa-counter","seed":1}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	var out strings.Builder
	err := run([]string{"-replay", path}, &out)
	if err == nil || !strings.Contains(err.Error(), "expected 2, found 1") {
		t.Fatalf("stale artifact: got %v, want expected-vs-found version error", err)
	}
}

// TestGuidedMode: the coverage-guided loop runs through the CLI and
// reports its corpus counters.
func TestGuidedMode(t *testing.T) {
	var out strings.Builder
	if err := run([]string{"-target", "qa-counter", "-guided", "-seeds", "12", "-budget", "20000"}, &out); err != nil {
		t.Fatalf("guided sweep returned %v\noutput:\n%s", err, out.String())
	}
	for _, want := range []string{"coverage:", "state signatures", "corpus", "all guided runs passed"} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("guided output missing %q:\n%s", want, out.String())
		}
	}
}

// TestFrontierMode: a tiny grid sweep renders the map, writes the JSON
// document, and exits zero even though the ablated target fails cells.
func TestFrontierMode(t *testing.T) {
	if testing.Short() {
		t.Skip("frontier sweep is a multi-run campaign")
	}
	path := filepath.Join(t.TempDir(), "frontier.json")
	var out strings.Builder
	err := run([]string{
		"-target", "frontier/monitor-fixed",
		"-frontier", "phi=1,8,delta=0,16",
		"-seeds", "1",
		"-frontier-out", path,
	}, &out)
	if err != nil {
		t.Fatalf("frontier sweep returned %v\noutput:\n%s", err, out.String())
	}
	for _, want := range []string{"frontier sweep:", "| Φ \\ Δ |", "ablated — failures expected", "wrote "} {
		if !strings.Contains(out.String(), want) {
			t.Fatalf("frontier output missing %q:\n%s", want, out.String())
		}
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), `"schema": "tbwf-frontier/v1"`) {
		t.Fatalf("frontier document missing schema:\n%s", data)
	}

	if err := run([]string{"-target", "qa-counter", "-frontier", "phi=1"}, &out); err == nil {
		t.Fatal("spec without delta accepted")
	}
}

func TestNonPositiveParallelRejected(t *testing.T) {
	var out strings.Builder
	for _, v := range []string{"0", "-2"} {
		if err := run([]string{"-target", "heartbeat-single", "-seeds", "1", "-parallel", v}, &out); err == nil {
			t.Errorf("-parallel %s accepted", v)
		}
	}
}
