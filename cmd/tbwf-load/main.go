// Command tbwf-load drives a running tbwf-serve with closed-loop workers
// and reports latency and throughput as JSON (see internal/serve/loadgen).
//
// Usage:
//
//	tbwf-load -addr http://127.0.0.1:8080 -clients 8 -duration 5s
//	tbwf-load -mix 'add=9,read=1' -report report.json
//	tbwf-load -inject-process 2 -inject-spec growing:400:2ms:1.5 -inject-after 2s
//	tbwf-load -dist zipf:1.2 -keys 256 -clients 1000
//	                                    # keyed load on /v1/kv/* (sharded server)
//
// Each client is pinned to replica (client mod n). With an injection the
// report splits latency into the timely clients and those pinned to the
// degraded replica — the service-level graceful-degradation measurement.
// The human digest goes to stderr; -report writes the JSON document to a
// file, or to stdout with -report -.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"tbwf/internal/serve/loadgen"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "tbwf-load:", err)
		os.Exit(1)
	}
}

func run(args []string, stdout *os.File) error {
	fs := flag.NewFlagSet("tbwf-load", flag.ContinueOnError)
	addr := fs.String("addr", "http://127.0.0.1:8080", "service base URL")
	clients := fs.Int("clients", 8, "closed-loop client workers")
	duration := fs.Duration("duration", 5*time.Second, "measurement window")
	mix := fs.String("mix", "add=9,read=1", "weighted op mix, e.g. 'add=9,read=1'")
	report := fs.String("report", "", "write the JSON report to this file ('-': stdout)")
	injProcess := fs.Int("inject-process", -1, "mid-run: retune this process (-1: no injection)")
	injSpec := fs.String("inject-spec", "growing:400:2ms:1.5", "profile spec for the injection")
	injAfter := fs.Duration("inject-after", 0, "injection delay (0: half the duration)")
	timeout := fs.Duration("timeout", 15*time.Second, "per-request timeout (bounds the run's tail on degraded replicas)")
	snapIndexes := fs.Int("snapshot-indexes", 1, "index range for snapshot update ops")
	dist := fs.String("dist", "",
		"keyed load on /v1/kv/*: key distribution, 'uniform' | 'zipf:θ' | 'hot:f' (empty: legacy unkeyed load)")
	keys := fs.Int("keys", 64, "keyspace size for keyed load")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *clients <= 0 {
		return fmt.Errorf("-clients must be positive, got %d", *clients)
	}
	if *duration <= 0 {
		return fmt.Errorf("-duration must be positive, got %v", *duration)
	}
	mixSet := false
	fs.Visit(func(f *flag.Flag) { mixSet = mixSet || f.Name == "mix" })
	if *dist != "" {
		// Keyed runs validate the distribution up front, and the unkeyed
		// default mix ("read" is not a KV kind) switches to a keyed default
		// unless the user chose one explicitly.
		if _, err := loadgen.ParseDist(*dist, *keys); err != nil {
			return fmt.Errorf("-dist: %w", err)
		}
		if !mixSet {
			*mix = "add=9,get=1"
		}
	} else if *keys != 64 {
		return fmt.Errorf("-keys needs -dist (keyed load)")
	}
	if err := loadgen.ValidateMix(*mix); err != nil {
		return fmt.Errorf("-mix: %w", err)
	}

	cfg := loadgen.Config{
		BaseURL:         *addr,
		Clients:         *clients,
		Duration:        *duration,
		Mix:             *mix,
		Timeout:         *timeout,
		SnapshotIndexes: *snapIndexes,
		Dist:            *dist,
		Keys:            *keys,
	}
	if *injProcess >= 0 {
		after := *injAfter
		if after <= 0 {
			after = *duration / 2
		}
		cfg.Inject = &loadgen.Injection{Process: *injProcess, Spec: *injSpec, After: after}
	}

	rep, err := loadgen.Run(cfg)
	if err != nil {
		return err
	}
	fmt.Fprint(os.Stderr, loadgen.Format(rep))

	doc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	doc = append(doc, '\n')
	switch *report {
	case "":
	case "-":
		if _, err := stdout.Write(doc); err != nil {
			return err
		}
	default:
		if err := os.WriteFile(*report, doc, 0o644); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "tbwf-load: report written to %s\n", *report)
	}
	return nil
}
