package main

import (
	"encoding/json"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"

	"tbwf/internal/serve"
)

func TestRunRejectsBadFlags(t *testing.T) {
	cases := [][]string{
		{"-clients", "0"},
		{"-clients", "-3"},
		{"-duration", "0s"},
		{"-badflag"},
	}
	for _, args := range cases {
		if err := run(args, os.Stdout); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
}

func TestRunWritesReport(t *testing.T) {
	srv, err := serve.New(serve.Config{N: 2, Object: "counter"})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	path := filepath.Join(t.TempDir(), "report.json")
	err = run([]string{
		"-addr", ts.URL,
		"-clients", "2",
		"-duration", "300ms",
		"-mix", "add=3,read=1",
		"-report", path,
	}, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}

	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Object    string  `json:"object"`
		TotalOps  int64   `json:"total_ops"`
		OpsPerSec float64 `json:"ops_per_sec"`
		Errors    int64   `json:"errors"`
		Timely    struct {
			Count int64   `json:"count"`
			P99US float64 `json:"p99_us"`
		} `json:"timely"`
		TimelyP99US float64 `json:"timely_p99_us"`
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report does not parse: %v", err)
	}
	if rep.Object != "counter" || rep.TotalOps == 0 || rep.OpsPerSec <= 0 {
		t.Fatalf("report = %+v", rep)
	}
	if rep.Errors != 0 {
		t.Fatalf("%d errors", rep.Errors)
	}
	if rep.Timely.Count != rep.TotalOps || rep.TimelyP99US != rep.Timely.P99US {
		t.Fatalf("timely digest inconsistent: %+v", rep)
	}
}

func TestRunUnreachableServer(t *testing.T) {
	if err := run([]string{"-addr", "http://127.0.0.1:1", "-duration", "100ms"}, os.Stdout); err == nil {
		t.Fatal("unreachable server accepted")
	}
}

// Keyed flags are validated at flag time with clear errors.
func TestKeyedFlagValidation(t *testing.T) {
	cases := [][]string{
		{"-dist", "zipf:0"},
		{"-dist", "zipf:-1"},
		{"-dist", "zipf:x"},
		{"-dist", "hot:1.5"},
		{"-dist", "pareto"},
		{"-dist", "uniform", "-keys", "0"},
		{"-keys", "128"},  // -keys without -dist
		{"-mix", "add=0"}, // mix rejected before any traffic
		{"-mix", ""},
	}
	for _, args := range cases {
		if err := run(args, os.Stdout); err == nil {
			t.Errorf("run(%v) accepted", args)
		}
	}
}

// A keyed run against a sharded server writes the per-shard breakdown,
// and the default mix switches to the KV vocabulary (the unkeyed default
// contains "read", which the keyed API does not serve).
func TestKeyedRunWritesReport(t *testing.T) {
	srv, err := serve.New(serve.Config{N: 2, Object: "counter", Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Stop()
	ts := httptest.NewServer(srv)
	defer ts.Close()

	path := filepath.Join(t.TempDir(), "report.json")
	err = run([]string{
		"-addr", ts.URL,
		"-clients", "4",
		"-duration", "300ms",
		"-dist", "zipf:1.2",
		"-keys", "32",
		"-report", path,
	}, os.Stdout)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep struct {
		Distribution string `json:"distribution"`
		Keys         int    `json:"keys"`
		Shards       int    `json:"shards"`
		Mix          string `json:"mix"`
		TotalOps     int64  `json:"total_ops"`
		Errors       int64  `json:"errors"`
		PerShard     []struct {
			Shard       int     `json:"shard"`
			Ops         int64   `json:"ops"`
			TimelyP99US float64 `json:"timely_p99_us"`
		} `json:"per_shard"`
	}
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("report does not parse: %v", err)
	}
	if rep.Distribution != "zipf:1.2" || rep.Keys != 32 || rep.Shards != 4 {
		t.Fatalf("keyed header: %+v", rep)
	}
	if rep.Mix != "add=9,get=1" {
		t.Fatalf("default keyed mix = %q", rep.Mix)
	}
	if rep.TotalOps == 0 || rep.Errors != 0 {
		t.Fatalf("ops=%d errors=%d", rep.TotalOps, rep.Errors)
	}
	if len(rep.PerShard) != 4 {
		t.Fatalf("%d per-shard entries", len(rep.PerShard))
	}
	var sum int64
	for _, sl := range rep.PerShard {
		sum += sl.Ops
	}
	if sum != rep.TotalOps {
		t.Fatalf("per-shard sum %d != total %d", sum, rep.TotalOps)
	}
}
