package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// goodRTDoc returns a minimal valid rt document.
func goodRTDoc() rtDoc {
	doc := rtDoc{Schema: rtSchema, NumCPU: 1, Go: "go1.24.0"}
	for _, name := range rtRequiredLeaves {
		doc.Benchmarks = append(doc.Benchmarks, rtEntry{
			Name: name, N: 100, NsPerOp: 100, OpsPerSec: 1e7,
		})
	}
	doc.Derived = rtDerived{ServeQueueSpeedup8P: 1.5, GateTimerAllocsSaved: 3, InvokeAllocsPerOp: 0}
	doc.Load = &rtLoad{Source: "tbwf-load", TotalOps: 1000, TimelyP99US: 900}
	return doc
}

func writeDoc(t *testing.T, doc rtDoc) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "BENCH_rt.json")
	if err := writeRTJSON(path, doc); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestValidateRTDocAcceptsGood(t *testing.T) {
	if err := validateRTDoc(writeDoc(t, goodRTDoc())); err != nil {
		t.Fatalf("valid document rejected: %v", err)
	}
}

func TestValidateRTDocRejections(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*rtDoc)
		want string
	}{
		{"wrong schema", func(d *rtDoc) { d.Schema = "nope/v1" }, "schema"},
		{"missing leaf", func(d *rtDoc) { d.Benchmarks = d.Benchmarks[1:] }, "missing benchmark"},
		{"speedup below floor", func(d *rtDoc) { d.Derived.ServeQueueSpeedup8P = 1.1 }, "speedup"},
		{"invoke path allocates", func(d *rtDoc) { d.Derived.InvokeAllocsPerOp = 0.5 }, "allocates"},
		{"no load leg", func(d *rtDoc) { d.Load = nil }, "tbwf-load"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			doc := goodRTDoc()
			tc.mut(&doc)
			err := validateRTDoc(writeDoc(t, doc))
			if err == nil {
				t.Fatal("accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// -check sniffs schemas: it must validate the repo's committed documents
// of all three kinds in one invocation.
func TestCheckCommittedDocs(t *testing.T) {
	var paths []string
	for _, f := range []string{"BENCH_deploy.json", "BENCH_net.json", "BENCH_shard.json", "BENCH_frontier.json", "BENCH_rt.json"} {
		p := filepath.Join("..", "..", f)
		if _, err := os.Stat(p); err != nil {
			t.Fatalf("committed document %s missing: %v", f, err)
		}
		paths = append(paths, p)
	}
	if err := run([]string{"-check", strings.Join(paths, ",")}); err != nil {
		t.Fatalf("-check over committed documents: %v", err)
	}
}

func TestCheckRejectsUnknownSchema(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bogus.json")
	if err := os.WriteFile(path, []byte(`{"schema":"mystery/v9"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-check", path})
	if err == nil {
		t.Fatal("-check accepted an unknown schema")
	}
}

func TestCheckRejectsEmptyBenchDoc(t *testing.T) {
	path := filepath.Join(t.TempDir(), "empty.json")
	if err := os.WriteFile(path, []byte(`{"schema":"tbwf-bench/v1","benchmarks":[]}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-check", path}); err == nil {
		t.Fatal("-check accepted a bench document with no entries")
	}
}

// The perf gate must reject allocation growth and ratio collapse without
// depending on the host's absolute speed. compareRTDoc re-runs the real
// benchmarks, which is too slow for unit tests, so the comparison logic
// is exercised through validateRTDoc plus this decode-level check on the
// committed snapshot.
func TestCommittedRTDocDecodes(t *testing.T) {
	doc, err := decodeRTDoc(filepath.Join("..", "..", "BENCH_rt.json"))
	if err != nil {
		t.Fatal(err)
	}
	if doc.Derived.ServeQueueSpeedup8P < 1.3 {
		t.Fatalf("committed speedup %.2fx below the 1.3x acceptance floor", doc.Derived.ServeQueueSpeedup8P)
	}
	if doc.Derived.InvokeAllocsPerOp > 0.05 {
		t.Fatalf("committed invoke path allocates %.3f/op", doc.Derived.InvokeAllocsPerOp)
	}
	if doc.Derived.GateTimerAllocsSaved < 1 {
		t.Fatalf("committed gate parking saves %.1f allocs/gap, want at least 1", doc.Derived.GateTimerAllocsSaved)
	}
}
