package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
)

func TestListFlag(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSubsetWithCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-quick", "-run", "A3", "-csv", dir}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "a3-ablate-reader-backoff.csv")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("csv not written: %v", err)
	}
	if len(data) == 0 {
		t.Fatal("csv empty")
	}
}

func TestParallelAndStatsFlags(t *testing.T) {
	if err := run([]string{"-quick", "-run", "A3", "-parallel", "2", "-stats"}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownExperimentRejected(t *testing.T) {
	if err := run([]string{"-run", "E99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestBadFlagRejected(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}

func TestNonPositiveParallelRejected(t *testing.T) {
	for _, v := range []string{"0", "-1"} {
		if err := run([]string{"-quick", "-run", "A3", "-parallel", v}); err == nil {
			t.Errorf("-parallel %s accepted", v)
		}
	}
	// Omitting the flag keeps the one-worker-per-CPU default.
	if err := run([]string{"-quick", "-run", "A3"}); err != nil {
		t.Fatal(err)
	}
}

func TestJSONResults(t *testing.T) {
	path := filepath.Join(t.TempDir(), "BENCH_test.json")
	if err := run([]string{"-quick", "-run", "A3", "-json", path}); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("json not written: %v", err)
	}
	var doc benchDoc
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("results do not parse: %v", err)
	}
	if doc.Schema != benchSchema || !doc.Quick || doc.NumCPU < 1 {
		t.Fatalf("header = %+v", doc)
	}
	if len(doc.Benchmarks) != 1 {
		t.Fatalf("benchmarks = %+v", doc.Benchmarks)
	}
	b := doc.Benchmarks[0]
	if b.ID != "A3" || b.Steps <= 0 || b.StepsPerSec <= 0 || b.AllocsPerStep < 0 || b.WallSeconds <= 0 {
		t.Fatalf("benchmark record = %+v", b)
	}
}

// TestCheckFrontier: -check-frontier accepts a well-formed frontier
// document and rejects wrong schemas and inconsistent grids.
func TestCheckFrontier(t *testing.T) {
	dir := t.TempDir()
	write := func(name, body string) string {
		path := filepath.Join(dir, name)
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}
	good := write("good.json", `{"schema":"tbwf-frontier/v1","phis":[1,8],"deltas":[0],"seeds":1,
		"targets":[{"target":"t","cells":[
			{"phi":1,"delta":0,"runs":1,"passes":1},
			{"phi":8,"delta":0,"runs":1,"fails":1}]}]}`)
	if err := run([]string{"-check-frontier", good}); err != nil {
		t.Fatalf("good document rejected: %v", err)
	}
	wrongSchema := write("wrong.json", `{"schema":"tbwf-bench/v1"}`)
	if err := run([]string{"-check-frontier", wrongSchema}); err == nil {
		t.Fatal("wrong schema accepted")
	}
	badGrid := write("grid.json", `{"schema":"tbwf-frontier/v1","phis":[1,8],"deltas":[0],"seeds":1,
		"targets":[{"target":"t","cells":[{"phi":1,"delta":0,"runs":1,"passes":1}]}]}`)
	if err := run([]string{"-check-frontier", badGrid}); err == nil {
		t.Fatal("truncated cell grid accepted")
	}
	badSum := write("sum.json", `{"schema":"tbwf-frontier/v1","phis":[1],"deltas":[0],"seeds":2,
		"targets":[{"target":"t","cells":[{"phi":1,"delta":0,"runs":2,"passes":1}]}]}`)
	if err := run([]string{"-check-frontier", badSum}); err == nil {
		t.Fatal("inconsistent outcome counts accepted")
	}
	if err := run([]string{"-check-frontier", filepath.Join(dir, "missing.json")}); err == nil {
		t.Fatal("missing file accepted")
	}
}
