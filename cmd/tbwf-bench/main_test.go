package main

import (
	"os"
	"path/filepath"
	"testing"
)

func TestListFlag(t *testing.T) {
	if err := run([]string{"-list"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunSubsetWithCSV(t *testing.T) {
	dir := t.TempDir()
	if err := run([]string{"-quick", "-run", "A3", "-csv", dir}); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, "a3-ablate-reader-backoff.csv")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("csv not written: %v", err)
	}
	if len(data) == 0 {
		t.Fatal("csv empty")
	}
}

func TestParallelAndStatsFlags(t *testing.T) {
	if err := run([]string{"-quick", "-run", "A3", "-parallel", "2", "-stats"}); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownExperimentRejected(t *testing.T) {
	if err := run([]string{"-run", "E99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestBadFlagRejected(t *testing.T) {
	if err := run([]string{"-definitely-not-a-flag"}); err == nil {
		t.Fatal("bad flag accepted")
	}
}
