package main

import (
	"encoding/json"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"

	"tbwf/internal/rtbench"
)

// rtSchema names the rt hot-path benchmark document (BENCH_rt.json);
// EXPERIMENTS.md §RT documents it. It is a sibling of tbwf-bench/v1
// (simulation experiment tables) and tbwf-frontier/v1 (fuzz frontier
// maps); -check validates all three by schema sniff.
const rtSchema = "tbwf-rtbench/v1"

// rtDoc is the machine-readable rt benchmark document written by
// `tbwf-bench -rt -json`.
type rtDoc struct {
	Schema     string    `json:"schema"`
	NumCPU     int       `json:"num_cpu"`
	Go         string    `json:"go"`
	Benchmarks []rtEntry `json:"benchmarks"`
	Derived    rtDerived `json:"derived"`
	Load       *rtLoad   `json:"load,omitempty"`
}

// rtEntry is one rtbench leaf's record.
type rtEntry struct {
	Name        string  `json:"name"`
	N           int     `json:"n"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	OpsPerSec   float64 `json:"ops_per_sec"`
}

// rtDerived carries the machine-independent ratios the perf gate runs
// on: absolute ns/op moves with the host, but the same binary's
// current-vs-baseline ratio does not.
type rtDerived struct {
	// ServeQueueSpeedup8P is ring ns/op over mpsc ns/op at 8 producers —
	// how much faster the serve/shard worker queues got relative to the
	// mutex ring they replaced. The acceptance floor is 1.3.
	ServeQueueSpeedup8P float64 `json:"serve_queue_speedup_8p"`
	// GateTimerAllocsSaved is the timer-baseline leg's allocs/op minus the
	// pooled park's: the per-gap allocations the campaign deleted.
	GateTimerAllocsSaved float64 `json:"gate_timer_allocs_saved"`
	// InvokeAllocsPerOp repeats InvokePath/rt allocs/op as a named
	// headline; the acceptance bound is amortized zero.
	InvokeAllocsPerOp float64 `json:"invoke_allocs_per_op"`
}

// rtLoad pins the service-level latency leg: the timely-client p99 of a
// tbwf-load run against a live tbwf-serve, copied from the load
// generator's report by -load-report.
type rtLoad struct {
	Source      string  `json:"source"`
	TotalOps    int64   `json:"total_ops"`
	Errors      int64   `json:"errors"`
	TimelyP99US float64 `json:"timely_p99_us"`
}

// runRTBenches executes every rtbench leaf through testing.Benchmark and
// assembles the document.
func runRTBenches() rtDoc {
	doc := rtDoc{Schema: rtSchema, NumCPU: runtime.NumCPU(), Go: runtime.Version()}
	byName := map[string]rtEntry{}
	for _, l := range rtbench.All() {
		r := testing.Benchmark(l.F)
		e := rtEntry{
			Name:        l.Name,
			N:           r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  float64(r.AllocedBytesPerOp()),
			AllocsPerOp: float64(r.MemAllocs) / float64(r.N),
		}
		if e.NsPerOp > 0 {
			e.OpsPerSec = 1e9 / e.NsPerOp
		}
		doc.Benchmarks = append(doc.Benchmarks, e)
		byName[e.Name] = e
		fmt.Printf("%-28s %12.1f ns/op %10.3f allocs/op %14.0f ops/s\n",
			e.Name, e.NsPerOp, e.AllocsPerOp, e.OpsPerSec)
	}
	if ring, ok := byName["ServeQueue/ring/p=8"]; ok {
		if m, ok := byName["ServeQueue/mpsc/p=8"]; ok && m.NsPerOp > 0 {
			doc.Derived.ServeQueueSpeedup8P = ring.NsPerOp / m.NsPerOp
		}
	}
	if base, ok := byName["GatePace/timer-baseline"]; ok {
		if parked, ok := byName["GatePace/parked"]; ok {
			doc.Derived.GateTimerAllocsSaved = base.AllocsPerOp - parked.AllocsPerOp
		}
	}
	if inv, ok := byName["InvokePath/rt"]; ok {
		doc.Derived.InvokeAllocsPerOp = inv.AllocsPerOp
	}
	fmt.Printf("derived: serve-queue speedup at 8 producers %.2fx, %.1f timer allocs/gap deleted, invoke path %.3f allocs/op\n",
		doc.Derived.ServeQueueSpeedup8P, doc.Derived.GateTimerAllocsSaved, doc.Derived.InvokeAllocsPerOp)
	return doc
}

// attachLoadReport copies the pinned tbwf-load leg's headline numbers
// into the rt document.
func attachLoadReport(doc *rtDoc, path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var rep struct {
		TotalOps    int64   `json:"total_ops"`
		Errors      int64   `json:"errors"`
		TimelyP99US float64 `json:"timely_p99_us"`
	}
	if err := json.Unmarshal(data, &rep); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if rep.TotalOps == 0 {
		return fmt.Errorf("%s: report has no completed operations", path)
	}
	doc.Load = &rtLoad{
		Source:      "tbwf-load",
		TotalOps:    rep.TotalOps,
		Errors:      rep.Errors,
		TimelyP99US: rep.TimelyP99US,
	}
	return nil
}

func writeRTJSON(path string, doc rtDoc) error {
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

func decodeRTDoc(path string) (rtDoc, error) {
	var doc rtDoc
	data, err := os.ReadFile(path)
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return doc, fmt.Errorf("%s: %w", path, err)
	}
	if doc.Schema != rtSchema {
		return doc, fmt.Errorf("%s: schema %q, want %q", path, doc.Schema, rtSchema)
	}
	return doc, nil
}

// rtRequiredLeaves must be present in any valid rt document; they are
// the leaves the acceptance criteria and the perf gate reference.
var rtRequiredLeaves = []string{
	"GatePace/zero",
	"GatePace/parked",
	"GatePace/timer-baseline",
	"ServeQueue/ring/p=8",
	"ServeQueue/mpsc/p=8",
	"InvokePath/rt",
}

// validateRTDoc checks a committed BENCH_rt.json: schema, required
// leaves, and that the snapshot itself upholds the campaign's acceptance
// bounds (a regressed snapshot must not be committable).
func validateRTDoc(path string) error {
	doc, err := decodeRTDoc(path)
	if err != nil {
		return err
	}
	have := map[string]rtEntry{}
	for _, e := range doc.Benchmarks {
		have[e.Name] = e
	}
	for _, name := range rtRequiredLeaves {
		if _, ok := have[name]; !ok {
			return fmt.Errorf("%s: missing benchmark %q", path, name)
		}
	}
	if s := doc.Derived.ServeQueueSpeedup8P; s < 1.3 {
		return fmt.Errorf("%s: serve-queue speedup at 8 producers is %.2fx, acceptance floor is 1.30x", path, s)
	}
	if a := doc.Derived.InvokeAllocsPerOp; a > 0.05 {
		return fmt.Errorf("%s: invoke path allocates %.3f objects/op, want amortized 0", path, a)
	}
	if doc.Load == nil || doc.Load.TimelyP99US <= 0 {
		return fmt.Errorf("%s: missing pinned tbwf-load p99 leg", path)
	}
	fmt.Printf("%s: schema %s, %d benchmarks, speedup %.2fx, invoke %.3f allocs/op, load p99 %.0fµs\n",
		path, doc.Schema, len(doc.Benchmarks), doc.Derived.ServeQueueSpeedup8P,
		doc.Derived.InvokeAllocsPerOp, doc.Load.TimelyP99US)
	return nil
}

// compareRTDoc is the CI perf gate: it re-runs the rt benchmarks and
// fails on a regression against the committed document. The gate runs on
// machine-independent quantities — allocation counts are exact and the
// current-vs-baseline speedup is a same-binary ratio — so it holds on
// any host. Absolute ns/op is additionally gated at 10% tolerance, but
// only when the committed document was produced on a matching host
// (same CPU count and Go version); otherwise absolute timing comparisons
// are noise and are skipped with a note.
func compareRTDoc(path string) error {
	want, err := decodeRTDoc(path)
	if err != nil {
		return err
	}
	wantBy := map[string]rtEntry{}
	for _, e := range want.Benchmarks {
		wantBy[e.Name] = e
	}
	got := runRTBenches()
	var fails []string
	for _, g := range got.Benchmarks {
		w, ok := wantBy[g.Name]
		if !ok {
			continue
		}
		// Allocations are deterministic: any increase is a regression.
		if g.AllocsPerOp > w.AllocsPerOp+0.05 {
			fails = append(fails, fmt.Sprintf("%s: allocs/op %.3f, committed %.3f", g.Name, g.AllocsPerOp, w.AllocsPerOp))
		}
	}
	// The speedup ratio must hold its floor and stay within 10% of the
	// committed ratio.
	if floor := 1.3; got.Derived.ServeQueueSpeedup8P < floor {
		fails = append(fails, fmt.Sprintf("serve-queue speedup at 8 producers %.2fx, floor %.2fx", got.Derived.ServeQueueSpeedup8P, floor))
	}
	if w := want.Derived.ServeQueueSpeedup8P; w > 0 && got.Derived.ServeQueueSpeedup8P < 0.9*w {
		fails = append(fails, fmt.Sprintf("serve-queue speedup at 8 producers %.2fx, >10%% below committed %.2fx", got.Derived.ServeQueueSpeedup8P, w))
	}
	if sameHost := got.NumCPU == want.NumCPU && got.Go == want.Go; sameHost {
		for _, g := range got.Benchmarks {
			w, ok := wantBy[g.Name]
			if !ok || w.NsPerOp <= 0 || !absoluteGated(g.Name) {
				continue
			}
			ns := g.NsPerOp
			// Best-of-3: a single run on a loaded host jitters well past
			// any honest tolerance; a true regression fails every retry.
			for retry := 0; retry < 2 && ns > 1.10*w.NsPerOp; retry++ {
				if re := remeasure(g.Name); re > 0 && re < ns {
					ns = re
				}
			}
			if ns > 1.10*w.NsPerOp {
				fails = append(fails, fmt.Sprintf("%s: %.1f ns/op, >10%% above committed %.1f", g.Name, ns, w.NsPerOp))
			}
		}
	} else {
		fmt.Printf("note: committed document from a different host (%d CPU, %s); absolute ns/op gate skipped, ratio and allocation gates applied\n",
			want.NumCPU, want.Go)
	}
	if len(fails) > 0 {
		return fmt.Errorf("perf gate failed against %s:\n  %s", path, strings.Join(fails, "\n  "))
	}
	fmt.Printf("perf gate passed against %s\n", path)
	return nil
}

// absoluteGated reports whether a leaf's absolute ns/op is stable enough
// to gate at 10%: the zero-pace fast path and the mpsc queue are tight
// arithmetic loops. The rest are exempt — baseline legs are reference
// implementations whose movement feeds the ratio gates, the parked legs
// are timer-resolution bound, and InvokePath's wall time is dominated by
// leader-election scheduling (its gated headline is allocs/op, which is
// deterministic).
func absoluteGated(name string) bool {
	return name == "GatePace/zero" || strings.HasPrefix(name, "ServeQueue/mpsc/")
}

// remeasure re-runs one leaf by name and returns its ns/op (0 if the
// leaf is unknown).
func remeasure(name string) float64 {
	for _, l := range rtbench.All() {
		if l.Name == name {
			r := testing.Benchmark(l.F)
			if r.N == 0 {
				return 0
			}
			return float64(r.T.Nanoseconds()) / float64(r.N)
		}
	}
	return 0
}

// validateBenchFile validates one committed BENCH_*.json by schema
// sniff; `tbwf-bench -check` runs it over every committed document.
func validateBenchFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var head struct {
		Schema string `json:"schema"`
	}
	if err := json.Unmarshal(data, &head); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	switch head.Schema {
	case benchSchema:
		return validateBenchDoc(path, data)
	case "tbwf-frontier/v1":
		return validateFrontierDoc(path)
	case rtSchema:
		return validateRTDoc(path)
	default:
		return fmt.Errorf("%s: unknown schema %q", path, head.Schema)
	}
}

// validateBenchDoc checks a tbwf-bench/v1 experiment-table document.
func validateBenchDoc(path string, data []byte) error {
	var doc benchDoc
	if err := json.Unmarshal(data, &doc); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if len(doc.Benchmarks) == 0 {
		return fmt.Errorf("%s: no benchmark entries", path)
	}
	for _, e := range doc.Benchmarks {
		if e.ID == "" || e.Name == "" {
			return fmt.Errorf("%s: entry with empty id or name", path)
		}
		if e.Steps < 0 || e.StepsPerSec < 0 || e.AllocsPerStep < 0 || e.WallSeconds < 0 {
			return fmt.Errorf("%s: entry %s has negative metrics", path, e.ID)
		}
	}
	fmt.Printf("%s: schema %s, %d experiments\n", path, doc.Schema, len(doc.Benchmarks))
	return nil
}
