// Command tbwf-bench regenerates the evaluation tables E1–E10 described in
// DESIGN.md and recorded in EXPERIMENTS.md.
//
// Usage:
//
//	tbwf-bench                # run every experiment at full budgets
//	tbwf-bench -quick         # smaller budgets (CI-sized)
//	tbwf-bench -run E1,E7     # a subset, by id or name
//	tbwf-bench -parallel 4    # scenario worker-pool size (0: one per CPU)
//	tbwf-bench -stats         # report kernel throughput per experiment
//	tbwf-bench -csv out/      # additionally write one CSV per table
//	tbwf-bench -json BENCH_4.json  # machine-readable results (see EXPERIMENTS.md)
//	tbwf-bench -list          # list experiments and exit
//
// Tables are byte-identical whatever -parallel is; the flag only changes
// wall-clock time. If any experiment fails the error is printed, the
// remaining experiments still run, and the exit code is non-zero.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"tbwf/internal/exp"
	"tbwf/internal/explore"
	"tbwf/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tbwf-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tbwf-bench", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "use reduced budgets")
	runIDs := fs.String("run", "", "comma-separated experiment ids or names (default: all)")
	parallel := fs.Int("parallel", 0, "scenario worker-pool size (<= 0: one worker per CPU)")
	stats := fs.Bool("stats", false, "print kernel execution statistics per experiment")
	csvDir := fs.String("csv", "", "directory to write per-table CSV files into")
	jsonPath := fs.String("json", "", "write machine-readable results to this JSON file")
	list := fs.Bool("list", false, "list experiments and exit")
	checkFrontier := fs.String("check-frontier", "", "validate a tbwf-frontier JSON document (BENCH_frontier.json) and exit")
	check := fs.String("check", "", "validate committed BENCH_*.json documents (comma-separated paths, schema-sniffed) and exit")
	rtFlag := fs.Bool("rt", false, "run the rt hot-path benchmarks (internal/rtbench) instead of the simulation experiments")
	loadReport := fs.String("load-report", "", "with -rt: embed this tbwf-load report's p99 leg into the JSON document")
	compare := fs.String("compare", "", "re-run the rt benchmarks and fail on regression against this BENCH_rt.json (the CI perf gate)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if err := validateParallel(fs, *parallel); err != nil {
		return err
	}
	if *checkFrontier != "" {
		return validateFrontierDoc(*checkFrontier)
	}
	if *check != "" {
		failed := 0
		for _, path := range strings.Split(*check, ",") {
			if err := validateBenchFile(strings.TrimSpace(path)); err != nil {
				fmt.Fprintf(os.Stderr, "tbwf-bench: %v\n", err)
				failed++
			}
		}
		if failed > 0 {
			return fmt.Errorf("%d document(s) failed validation", failed)
		}
		return nil
	}
	if *compare != "" {
		return compareRTDoc(*compare)
	}
	if *rtFlag {
		doc := runRTBenches()
		if *loadReport != "" {
			if err := attachLoadReport(&doc, *loadReport); err != nil {
				return err
			}
		}
		if *jsonPath != "" {
			return writeRTJSON(*jsonPath, doc)
		}
		return nil
	}

	experiments := exp.All()
	if *list {
		for _, e := range experiments {
			fmt.Printf("%-4s %s\n", e.ID, e.Name)
		}
		return nil
	}
	if *runIDs != "" {
		var selected []exp.Experiment
		for _, id := range strings.Split(*runIDs, ",") {
			e, err := exp.ByID(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			selected = append(selected, e)
		}
		experiments = selected
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}

	opts := exp.Options{Quick: *quick, Parallel: *parallel}
	failed := 0
	doc := benchDoc{
		Schema:   benchSchema,
		Quick:    *quick,
		Parallel: *parallel,
		NumCPU:   runtime.NumCPU(),
		Go:       runtime.Version(),
	}
	for _, e := range experiments {
		var ms0, ms1 runtime.MemStats
		if *jsonPath != "" {
			runtime.ReadMemStats(&ms0)
		}
		start := time.Now()
		table, err := e.Run(opts)
		if *jsonPath != "" && err == nil {
			runtime.ReadMemStats(&ms1)
			doc.Benchmarks = append(doc.Benchmarks, benchRecord(e, table.Stats, ms1.Mallocs-ms0.Mallocs, time.Since(start)))
		}
		if err != nil {
			// Print and keep going: one broken experiment must not hide the
			// others' tables. The exit code still reports the failure.
			fmt.Fprintf(os.Stderr, "tbwf-bench: %s: %v\n", e.ID, err)
			failed++
			continue
		}
		fmt.Printf("%s\n(%s, %.1fs)\n", table, e.Name, time.Since(start).Seconds())
		if *stats {
			fmt.Printf("stats: %s\n", formatStats(table.Stats))
		}
		fmt.Println()
		if table.ID == "E1" {
			if chart, err := exp.StaircaseChart(table); err == nil {
				fmt.Printf("%s\n", chart)
			}
		}
		if *csvDir != "" {
			path := filepath.Join(*csvDir, fmt.Sprintf("%s-%s.csv", strings.ToLower(e.ID), e.Name))
			if err := os.WriteFile(path, []byte(table.CSV()), 0o644); err != nil {
				return err
			}
		}
	}
	if *jsonPath != "" {
		if err := writeBenchJSON(*jsonPath, doc); err != nil {
			return err
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d experiment(s) failed", failed)
	}
	return nil
}

// validateParallel rejects an explicitly-set non-positive -parallel. The
// unset default (0) keeps its one-worker-per-CPU meaning; asking for zero
// or negative workers is always a mistake, so it fails loudly instead of
// being silently remapped.
func validateParallel(fs *flag.FlagSet, parallel int) error {
	set := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "parallel" {
			set = true
		}
	})
	if set && parallel <= 0 {
		return fmt.Errorf("-parallel must be positive, got %d (omit the flag for one worker per CPU)", parallel)
	}
	return nil
}

// benchSchema names the JSON document layout; EXPERIMENTS.md documents it.
// The frontier sweep's sibling document (BENCH_frontier.json) carries
// explore.FrontierSchema ("tbwf-frontier/v1") and is validated by
// -check-frontier.
const benchSchema = "tbwf-bench/v1"

// validateFrontierDoc checks a frontier document's schema and internal
// consistency — the bench-smoke guard for the committed BENCH_frontier.json.
func validateFrontierDoc(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	doc, err := explore.DecodeFrontier(data)
	if err != nil {
		return err
	}
	if len(doc.Targets) == 0 || len(doc.Phis) == 0 || len(doc.Deltas) == 0 {
		return fmt.Errorf("%s: empty frontier document (targets=%d phis=%d deltas=%d)",
			path, len(doc.Targets), len(doc.Phis), len(doc.Deltas))
	}
	cells := len(doc.Phis) * len(doc.Deltas)
	for _, tf := range doc.Targets {
		if len(tf.Cells) != cells {
			return fmt.Errorf("%s: target %s has %d cells, grid is %d×%d",
				path, tf.Target, len(tf.Cells), len(doc.Phis), len(doc.Deltas))
		}
		for _, c := range tf.Cells {
			if c.Fails+c.Passes+c.Vacuous+c.Errors != c.Runs {
				return fmt.Errorf("%s: target %s cell (%d,%d): outcomes do not sum to runs",
					path, tf.Target, c.Phi, c.Delta)
			}
		}
	}
	fmt.Printf("%s: schema %s, %d targets × %d cells × %d seeds\n",
		path, doc.Schema, len(doc.Targets), cells, doc.Seeds)
	return nil
}

// benchDoc is the machine-readable result document written by -json.
type benchDoc struct {
	Schema     string       `json:"schema"`
	Quick      bool         `json:"quick"`
	Parallel   int          `json:"parallel"`
	NumCPU     int          `json:"num_cpu"`
	Go         string       `json:"go"`
	Benchmarks []benchEntry `json:"benchmarks"`
}

// benchEntry is one experiment's performance record.
type benchEntry struct {
	ID            string  `json:"id"`
	Name          string  `json:"name"`
	Steps         int64   `json:"steps"`
	StepsPerSec   float64 `json:"steps_per_sec"`
	AllocsPerStep float64 `json:"allocs_per_step"`
	WallSeconds   float64 `json:"wall_seconds"`
}

func benchRecord(e exp.Experiment, s sim.RunStats, mallocs uint64, wall time.Duration) benchEntry {
	rec := benchEntry{
		ID:          e.ID,
		Name:        e.Name,
		Steps:       s.Steps,
		StepsPerSec: s.StepsPerSec(),
		WallSeconds: wall.Seconds(),
	}
	if s.Steps > 0 {
		rec.AllocsPerStep = float64(mallocs) / float64(s.Steps)
	}
	return rec
}

func writeBenchJSON(path string, doc benchDoc) error {
	b, err := json.MarshalIndent(doc, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(b, '\n'), 0o644)
}

// formatStats renders an aggregated RunStats one-liner. Steps/s is summed
// over the scenarios' kernels, so under -parallel it reflects aggregate
// simulation throughput, not wall-clock.
func formatStats(s sim.RunStats) string {
	fastPct := 0.0
	if s.Steps > 0 {
		fastPct = 100 * float64(s.FastPathSteps) / float64(s.Steps)
	}
	return fmt.Sprintf("%d steps, %.2fM steps/s, %d handoffs, %.1f%% fast-path, %d schedule misses, %.1f KiB trace",
		s.Steps, s.StepsPerSec()/1e6, s.Handoffs, fastPct, s.ScheduleMisses, float64(s.TraceBytes)/1024)
}
