// Command tbwf-bench regenerates the evaluation tables E1–E10 described in
// DESIGN.md and recorded in EXPERIMENTS.md.
//
// Usage:
//
//	tbwf-bench                # run every experiment at full budgets
//	tbwf-bench -quick         # smaller budgets (CI-sized)
//	tbwf-bench -run E1,E7     # a subset, by id or name
//	tbwf-bench -csv out/      # additionally write one CSV per table
//	tbwf-bench -list          # list experiments and exit
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"tbwf/internal/exp"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tbwf-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tbwf-bench", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "use reduced budgets")
	runIDs := fs.String("run", "", "comma-separated experiment ids or names (default: all)")
	csvDir := fs.String("csv", "", "directory to write per-table CSV files into")
	list := fs.Bool("list", false, "list experiments and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	experiments := exp.All()
	if *list {
		for _, e := range experiments {
			fmt.Printf("%-4s %s\n", e.ID, e.Name)
		}
		return nil
	}
	if *runIDs != "" {
		var selected []exp.Experiment
		for _, id := range strings.Split(*runIDs, ",") {
			e, err := exp.ByID(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			selected = append(selected, e)
		}
		experiments = selected
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}

	for _, e := range experiments {
		start := time.Now()
		table, err := e.Run(*quick)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Printf("%s\n(%s, %.1fs)\n\n", table, e.Name, time.Since(start).Seconds())
		if table.ID == "E1" {
			if chart, err := exp.StaircaseChart(table); err == nil {
				fmt.Printf("%s\n", chart)
			}
		}
		if *csvDir != "" {
			path := filepath.Join(*csvDir, fmt.Sprintf("%s-%s.csv", strings.ToLower(e.ID), e.Name))
			if err := os.WriteFile(path, []byte(table.CSV()), 0o644); err != nil {
				return err
			}
		}
	}
	return nil
}
