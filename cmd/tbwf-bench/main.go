// Command tbwf-bench regenerates the evaluation tables E1–E10 described in
// DESIGN.md and recorded in EXPERIMENTS.md.
//
// Usage:
//
//	tbwf-bench                # run every experiment at full budgets
//	tbwf-bench -quick         # smaller budgets (CI-sized)
//	tbwf-bench -run E1,E7     # a subset, by id or name
//	tbwf-bench -parallel 4    # scenario worker-pool size (0: one per CPU)
//	tbwf-bench -stats         # report kernel throughput per experiment
//	tbwf-bench -csv out/      # additionally write one CSV per table
//	tbwf-bench -list          # list experiments and exit
//
// Tables are byte-identical whatever -parallel is; the flag only changes
// wall-clock time. If any experiment fails the error is printed, the
// remaining experiments still run, and the exit code is non-zero.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"tbwf/internal/exp"
	"tbwf/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "tbwf-bench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("tbwf-bench", flag.ContinueOnError)
	quick := fs.Bool("quick", false, "use reduced budgets")
	runIDs := fs.String("run", "", "comma-separated experiment ids or names (default: all)")
	parallel := fs.Int("parallel", 0, "scenario worker-pool size (<= 0: one worker per CPU)")
	stats := fs.Bool("stats", false, "print kernel execution statistics per experiment")
	csvDir := fs.String("csv", "", "directory to write per-table CSV files into")
	list := fs.Bool("list", false, "list experiments and exit")
	if err := fs.Parse(args); err != nil {
		return err
	}

	experiments := exp.All()
	if *list {
		for _, e := range experiments {
			fmt.Printf("%-4s %s\n", e.ID, e.Name)
		}
		return nil
	}
	if *runIDs != "" {
		var selected []exp.Experiment
		for _, id := range strings.Split(*runIDs, ",") {
			e, err := exp.ByID(strings.TrimSpace(id))
			if err != nil {
				return err
			}
			selected = append(selected, e)
		}
		experiments = selected
	}
	if *csvDir != "" {
		if err := os.MkdirAll(*csvDir, 0o755); err != nil {
			return err
		}
	}

	opts := exp.Options{Quick: *quick, Parallel: *parallel}
	failed := 0
	for _, e := range experiments {
		start := time.Now()
		table, err := e.Run(opts)
		if err != nil {
			// Print and keep going: one broken experiment must not hide the
			// others' tables. The exit code still reports the failure.
			fmt.Fprintf(os.Stderr, "tbwf-bench: %s: %v\n", e.ID, err)
			failed++
			continue
		}
		fmt.Printf("%s\n(%s, %.1fs)\n", table, e.Name, time.Since(start).Seconds())
		if *stats {
			fmt.Printf("stats: %s\n", formatStats(table.Stats))
		}
		fmt.Println()
		if table.ID == "E1" {
			if chart, err := exp.StaircaseChart(table); err == nil {
				fmt.Printf("%s\n", chart)
			}
		}
		if *csvDir != "" {
			path := filepath.Join(*csvDir, fmt.Sprintf("%s-%s.csv", strings.ToLower(e.ID), e.Name))
			if err := os.WriteFile(path, []byte(table.CSV()), 0o644); err != nil {
				return err
			}
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d experiment(s) failed", failed)
	}
	return nil
}

// formatStats renders an aggregated RunStats one-liner. Steps/s is summed
// over the scenarios' kernels, so under -parallel it reflects aggregate
// simulation throughput, not wall-clock.
func formatStats(s sim.RunStats) string {
	fastPct := 0.0
	if s.Steps > 0 {
		fastPct = 100 * float64(s.FastPathSteps) / float64(s.Steps)
	}
	return fmt.Sprintf("%d steps, %.2fM steps/s, %d handoffs, %.1f%% fast-path, %d schedule misses, %.1f KiB trace",
		s.Steps, s.StepsPerSec()/1e6, s.Handoffs, fastPct, s.ScheduleMisses, float64(s.TraceBytes)/1024)
}
