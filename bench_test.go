package tbwf

// One benchmark per experiment of DESIGN.md §4 (E1–E10), each running a
// scaled-down instance of the experiment per iteration and reporting its
// headline quantity as a custom metric, plus two benchmarks of the
// simulation substrate itself. cmd/tbwf-bench regenerates the full tables;
// these give the per-scenario costs and ratios in benchmark form:
//
//	go test -bench=. -benchmem
import (
	"fmt"
	"testing"

	"tbwf/internal/baseline"
	"tbwf/internal/consensus"
	"tbwf/internal/deploy"
	"tbwf/internal/elector"
	"tbwf/internal/exp"
	"tbwf/internal/monitor"
	"tbwf/internal/objtype"
	"tbwf/internal/omega"
	"tbwf/internal/omegaab"
	"tbwf/internal/prim"
	"tbwf/internal/qa"
	"tbwf/internal/register"
	"tbwf/internal/rtbench"
	"tbwf/internal/sim"
)

// hammer spawns per-process tasks invoking Add(1) forever on the stack.
func hammer(k *sim.Kernel, st *deploy.Stack[int64, objtype.CounterOp, int64]) {
	for p := 0; p < k.N(); p++ {
		p := p
		k.Spawn(p, fmt.Sprintf("client[%d]", p), func(pp prim.Proc) {
			for {
				st.Clients[p].Invoke(pp, objtype.CounterOp{Delta: 1})
			}
		})
	}
}

// BenchmarkE1Degradation: TBWF counter, n=4, k timely processes; metric is
// mean completed ops per timely process per million steps (the staircase's
// height at each k).
func BenchmarkE1Degradation(b *testing.B) {
	const n, steps = 4, 400_000
	for _, k := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("timely=%d", k), func(b *testing.B) {
			var timelyOps int64
			for i := 0; i < b.N; i++ {
				u := n - k
				avail := map[int]sim.Availability{}
				for p := 0; p < u; p++ {
					avail[p] = sim.GrowingGaps(400, int64(600+200*p), 1.5)
				}
				kern := sim.New(n, sim.WithSchedule(sim.Restrict(sim.RoundRobin(), avail)), sim.WithScheduleTrace(false))
				st, err := deploy.Build[int64, objtype.CounterOp, int64](deploy.Sim(kern), objtype.Counter{}, deploy.BuildConfig{})
				if err != nil {
					b.Fatal(err)
				}
				hammer(kern, st)
				if _, err := kern.Run(steps); err != nil {
					b.Fatal(err)
				}
				kern.Shutdown()
				for p := u; p < n; p++ {
					timelyOps += st.Clients[p].Completed()
				}
			}
			b.ReportMetric(float64(timelyOps)/float64(b.N)/float64(k)/(steps/1e6), "ops/proc/Msteps")
		})
	}
}

// BenchmarkE2Baselines: timely-class throughput decay (second half over
// first half) for each system with one untimely process; a gracefully
// degrading system reports ≈1, the boosters ≪1.
func BenchmarkE2Baselines(b *testing.B) {
	const n, steps = 3, 1_200_000
	weak := register.WithAbortPolicy(register.ProbAbort(0.5, 23))
	sched := func() sim.Schedule {
		return sim.Restrict(sim.Random(17, nil), map[int]sim.Availability{
			0: sim.GrowingGaps(400, 800, 1.6),
		})
	}
	type sys struct {
		name  string
		build func(k *sim.Kernel) ([]func(prim.Proc), []func() int64, error)
	}
	mk := func(inv func(p int, pp prim.Proc), done func(p int) int64) ([]func(prim.Proc), []func() int64) {
		loops := make([]func(prim.Proc), n)
		counts := make([]func() int64, n)
		for p := 0; p < n; p++ {
			p := p
			loops[p] = func(pp prim.Proc) {
				for {
					inv(p, pp)
				}
			}
			counts[p] = func() int64 { return done(p) }
		}
		return loops, counts
	}
	systems := []sys{
		{"tbwf", func(k *sim.Kernel) ([]func(prim.Proc), []func() int64, error) {
			st, err := deploy.Build[int64, objtype.CounterOp, int64](deploy.Sim(k), objtype.Counter{}, deploy.BuildConfig{})
			if err != nil {
				return nil, nil, err
			}
			l, c := mk(func(p int, pp prim.Proc) { st.Clients[p].Invoke(pp, objtype.CounterOp{Delta: 1}) },
				func(p int) int64 { return st.Clients[p].Completed() })
			return l, c, nil
		}},
		{"ack-booster", func(k *sim.Kernel) ([]func(prim.Proc), []func() int64, error) {
			cs, err := baseline.BuildAck[int64, objtype.CounterOp, int64](deploy.Sim(k), objtype.Counter{}, weak)
			if err != nil {
				return nil, nil, err
			}
			l, c := mk(func(p int, pp prim.Proc) { cs[p].Invoke(pp, objtype.CounterOp{Delta: 1}) },
				func(p int) int64 { return cs[p].Completed() })
			return l, c, nil
		}},
	}
	for _, s := range systems {
		b.Run(s.name, func(b *testing.B) {
			var ratioSum float64
			for i := 0; i < b.N; i++ {
				k := sim.New(n, sim.WithSchedule(sched()), sim.WithScheduleTrace(false))
				loops, counts, err := s.build(k)
				if err != nil {
					b.Fatal(err)
				}
				for p := 0; p < n; p++ {
					k.Spawn(p, "client", loops[p])
				}
				if _, err := k.Run(steps / 2); err != nil {
					b.Fatal(err)
				}
				first := counts[1]() + counts[2]()
				if _, err := k.Run(steps / 2); err != nil {
					b.Fatal(err)
				}
				k.Shutdown()
				second := counts[1]() + counts[2]() - first
				if first > 0 {
					ratioSum += float64(second) / float64(first)
				}
			}
			b.ReportMetric(ratioSum/float64(b.N), "2nd/1st-half-ratio")
		})
	}
}

// BenchmarkE3OmegaAtomic: stabilization step of the Figure 3 Ω∆.
func BenchmarkE3OmegaAtomic(b *testing.B) {
	for _, n := range []int{2, 4, 8} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var stab int64
			for i := 0; i < b.N; i++ {
				k := sim.New(n, sim.WithScheduleTrace(false))
				sys, err := omega.BuildRegisters(k)
				if err != nil {
					b.Fatal(err)
				}
				obs := omega.NewObserver(sys.Instances)
				k.AfterStep(obs.Sample)
				for _, inst := range sys.Instances {
					inst.Candidate.Set(true)
				}
				if _, err := k.Run(300_000); err != nil {
					b.Fatal(err)
				}
				k.Shutdown()
				stab += obs.StabilizedAt()
			}
			b.ReportMetric(float64(stab)/float64(b.N), "stabilization-steps")
		})
	}
}

// BenchmarkE4OmegaAbortable: stabilization step of the Figure 4–6 Ω∆
// under the strongest abort adversary.
func BenchmarkE4OmegaAbortable(b *testing.B) {
	for _, n := range []int{2, 4} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			var stab int64
			for i := 0; i < b.N; i++ {
				k := sim.New(n, sim.WithScheduleTrace(false))
				sys, err := omegaab.Build(deploy.Sim(k))
				if err != nil {
					b.Fatal(err)
				}
				obs := omega.NewObserver(sys.Instances)
				k.AfterStep(obs.Sample)
				for _, inst := range sys.Instances {
					inst.Candidate.Set(true)
				}
				if _, err := k.Run(400_000); err != nil {
					b.Fatal(err)
				}
				k.Shutdown()
				stab += obs.StabilizedAt()
			}
			b.ReportMetric(float64(stab)/float64(b.N), "stabilization-steps")
		})
	}
}

// BenchmarkE5Monitor: the activity monitor under a timely active peer;
// metric is fault suspicions per million steps (should be ~0 once the
// adaptive timeout settles).
func BenchmarkE5Monitor(b *testing.B) {
	const steps = 300_000
	var faults int64
	for i := 0; i < b.N; i++ {
		k := sim.New(2, sim.WithScheduleTrace(false))
		hb := register.NewAtomic(k, "Hb", int64(-1))
		m := monitor.NewPair(0, 1, hb)
		k.Spawn(1, "monitored", m.MonitoredTask())
		k.Spawn(0, "monitoring", m.MonitoringTask())
		m.Monitoring.Set(true)
		m.ActiveFor.Set(true)
		if _, err := k.Run(steps); err != nil {
			b.Fatal(err)
		}
		k.Shutdown()
		faults += m.FaultCntr.Get()
	}
	b.ReportMetric(float64(faults)/float64(b.N)/(steps/1e6), "suspicions/Msteps")
}

// BenchmarkE6WriteEfficiency: shared writes by non-leaders per million
// steps after stabilization (should be 0).
func BenchmarkE6WriteEfficiency(b *testing.B) {
	const n, steps = 3, 300_000
	var nonLeader int64
	for i := 0; i < b.N; i++ {
		k := sim.New(n, sim.WithWriteLog(true), sim.WithScheduleTrace(false))
		sys, err := omega.BuildRegisters(k)
		if err != nil {
			b.Fatal(err)
		}
		obs := omega.NewObserver(sys.Instances)
		k.AfterStep(obs.Sample)
		for _, inst := range sys.Instances {
			inst.Candidate.Set(true)
		}
		if _, err := k.Run(steps); err != nil {
			b.Fatal(err)
		}
		k.Shutdown()
		ell := obs.AgreedLeader([]int{0, 1, 2})
		margin := obs.StabilizedAt() + 20_000
		for _, ev := range k.Trace().Writes() {
			if ev.Step >= margin && ev.Proc != ell {
				nonLeader++
			}
		}
	}
	b.ReportMetric(float64(nonLeader)/float64(b.N), "non-leader-writes")
}

// BenchmarkE7Canonical: top client's share of completions with and without
// the canonical wait (1.0 = monopolized).
func BenchmarkE7Canonical(b *testing.B) {
	const n, steps = 3, 800_000
	for _, nonCanonical := range []bool{false, true} {
		name := "canonical"
		if nonCanonical {
			name = "non-canonical"
		}
		b.Run(name, func(b *testing.B) {
			var shareSum float64
			for i := 0; i < b.N; i++ {
				k := sim.New(n, sim.WithScheduleTrace(false))
				st, err := deploy.Build[int64, objtype.CounterOp, int64](deploy.Sim(k), objtype.Counter{}, deploy.BuildConfig{NonCanonical: nonCanonical})
				if err != nil {
					b.Fatal(err)
				}
				hammer(k, st)
				if _, err := k.Run(steps); err != nil {
					b.Fatal(err)
				}
				k.Shutdown()
				var total, top int64
				for _, c := range st.CompletedOps() {
					total += c
					if c > top {
						top = c
					}
				}
				if total > 0 {
					shareSum += float64(top) / float64(total)
				}
			}
			b.ReportMetric(shareSum/float64(b.N), "top-share")
		})
	}
}

// BenchmarkE8QAObject: O_QA calls needed per completed operation under
// contention, per abort policy.
func BenchmarkE8QAObject(b *testing.B) {
	type pol struct {
		name string
		opts []register.AbOption
	}
	for _, pc := range []pol{
		{"prob-0.5", []register.AbOption{register.WithAbortPolicy(register.ProbAbort(0.5, 42))}},
		{"prob-0.1", []register.AbOption{register.WithAbortPolicy(register.ProbAbort(0.1, 45))}},
	} {
		b.Run(pc.name, func(b *testing.B) {
			var calls, done int64
			for i := 0; i < b.N; i++ {
				k := sim.New(3, sim.WithSchedule(sim.Random(5, nil)), sim.WithScheduleTrace(false))
				so, err := qa.NewSim[int64, int64, int64](k, qa.TypeFuncs[int64, int64, int64]{
					InitFn:  func() int64 { return 0 },
					ApplyFn: func(s, d int64) (int64, int64) { return s + d, s },
				}, pc.opts...)
				if err != nil {
					b.Fatal(err)
				}
				for p := 0; p < 3; p++ {
					p := p
					k.Spawn(p, "client", func(pp prim.Proc) {
						h := so.Handle(p)
						for j := 0; j < 10; j++ {
							doQuery := false
							for {
								if doQuery {
									calls++
									_, out := h.Query()
									if out == qa.QueryApplied {
										done++
										break
									}
									if out == qa.QueryNotApplied {
										doQuery = false
									}
								} else {
									calls++
									if _, ok := h.Invoke(1); ok {
										done++
										break
									}
									doQuery = true
								}
								pp.Step()
							}
						}
					})
				}
				if _, err := k.Run(5_000_000); err != nil {
					b.Fatal(err)
				}
				k.Shutdown()
			}
			if done > 0 {
				b.ReportMetric(float64(calls)/float64(done), "calls/op")
			}
		})
	}
}

// BenchmarkE9Consensus: steps until the last correct process decides, with
// consensus and Ω∆ built from abortable registers only.
func BenchmarkE9Consensus(b *testing.B) {
	const n = 3
	var lastAt int64
	for i := 0; i < b.N; i++ {
		k := sim.New(n, sim.WithScheduleTrace(false))
		parts, err := consensus.Build(deploy.Sim(k), []int64{100, 101, 102}, false)
		if err != nil {
			b.Fatal(err)
		}
		var last int64 = -1
		known := make([]bool, n)
		k.AfterStep(func(step int64) {
			for p := 0; p < n; p++ {
				if !known[p] && parts[p].Decided.Get() {
					known[p] = true
					last = step
				}
			}
		})
		if _, err := k.Run(1_000_000); err != nil {
			b.Fatal(err)
		}
		k.Shutdown()
		lastAt += last
	}
	b.ReportMetric(float64(lastAt)/float64(b.N), "steps-to-decide")
}

// BenchmarkE10AbortableComm: steps for the Figure 4 Messenger to deliver a
// final value over an always-abort-on-contention register.
func BenchmarkE10AbortableComm(b *testing.B) {
	var deliveredAt int64
	for i := 0; i < b.N; i++ {
		k := sim.New(2, sim.WithScheduleTrace(false))
		out := register.NewAbortableSWSR(k, "Msg", 0, 0, 1)
		m0, err := omegaab.NewMessenger(0, 2, []prim.AbortableRegister[int]{nil, out}, make([]prim.AbortableRegister[int], 2), 0)
		if err != nil {
			b.Fatal(err)
		}
		m1, err := omegaab.NewMessenger(1, 2, make([]prim.AbortableRegister[int], 2), []prim.AbortableRegister[int]{out, nil}, 0)
		if err != nil {
			b.Fatal(err)
		}
		k.Spawn(0, "writer", func(p prim.Proc) {
			msg := []int{0, 99}
			for {
				m0.WriteMsgs(msg)
				p.Step()
			}
		})
		got := 0
		k.Spawn(1, "reader", func(p prim.Proc) {
			for {
				got = m1.ReadMsgs()[0]
				p.Step()
			}
		})
		at := int64(-1)
		k.AfterStep(func(step int64) {
			if at < 0 && got == 99 {
				at = step
			}
		})
		if _, err := k.Run(100_000); err != nil {
			b.Fatal(err)
		}
		k.Shutdown()
		deliveredAt += at
	}
	b.ReportMetric(float64(deliveredAt)/float64(b.N), "steps-to-deliver")
}

// BenchmarkKernelStep measures the kernel's per-step dispatch cost for
// spinning tasks across system sizes, with and without schedule-trace
// recording. With the trace off a step must not allocate (b.ReportAllocs
// makes `-benchmem` optional); with it on, the preallocated trace keeps
// appends amortized O(1).
func BenchmarkKernelStep(b *testing.B) {
	for _, n := range []int{2, 8, 32} {
		for _, trace := range []bool{true, false} {
			b.Run(fmt.Sprintf("n=%d/trace=%v", n, trace), func(b *testing.B) {
				b.ReportAllocs()
				k := sim.New(n, sim.WithScheduleTrace(trace))
				for p := 0; p < n; p++ {
					k.Spawn(p, "spin", func(pp prim.Proc) {
						for {
							pp.Step()
						}
					})
				}
				b.ResetTimer()
				if _, err := k.Run(int64(b.N)); err != nil {
					b.Fatal(err)
				}
				b.StopTimer()
				k.Shutdown()
				s := k.Stats()
				if s.Steps > 0 {
					b.ReportMetric(100*float64(s.FastPathSteps)/float64(s.Steps), "fast-path-%")
				}
			})
		}
	}
}

// BenchmarkKernelThroughput measures raw simulation speed: scheduled steps
// per second for spinning tasks.
func BenchmarkKernelThroughput(b *testing.B) {
	k := sim.New(4, sim.WithScheduleTrace(false))
	for p := 0; p < 4; p++ {
		k.Spawn(p, "spin", func(pp prim.Proc) {
			for {
				pp.Step()
			}
		})
	}
	b.ResetTimer()
	if _, err := k.Run(int64(b.N)); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	k.Shutdown()
}

// BenchmarkRegisterOps measures simulated atomic register operation cost.
func BenchmarkRegisterOps(b *testing.B) {
	k := sim.New(1, sim.WithScheduleTrace(false))
	r := register.NewAtomic(k, "r", int64(0))
	k.Spawn(0, "w", func(pp prim.Proc) {
		for i := int64(0); ; i++ {
			r.Write(i)
		}
	})
	b.ResetTimer()
	// Each write is 2 steps.
	if _, err := k.Run(int64(b.N) * 2); err != nil {
		b.Fatal(err)
	}
	b.StopTimer()
	k.Shutdown()
}

// BenchmarkFullTableQuick smoke-runs the complete experiment harness in
// quick mode once (guards against bit-rot of cmd/tbwf-bench's tables).
func BenchmarkFullTableQuick(b *testing.B) {
	if testing.Short() {
		b.Skip("short mode")
	}
	for i := 0; i < b.N; i++ {
		for _, e := range []string{"E5", "E10", "A3"} { // the cheapest tables
			ex, err := exp.ByID(e)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := ex.Run(exp.Options{Quick: true}); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// BenchmarkDeployBuild measures the composition root itself: the cost of
// wiring a full TBWF counter stack (elector, qa object, clients) on a fresh
// simulation kernel, for every registered elector. Build cost is off the
// hot path but bounds how cheaply the fuzzer can stand up a deployment per
// seed.
func BenchmarkDeployBuild(b *testing.B) {
	for _, builder := range []elector.Builder{elector.Atomic, elector.Abortable, elector.Nerio, elector.Reputation} {
		b.Run(builder.FlagName(), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				k := sim.New(4, sim.WithScheduleTrace(false))
				if _, err := deploy.Build[int64, objtype.CounterOp, int64](
					deploy.Sim(k), objtype.Counter{}, deploy.BuildConfig{Elector: builder}); err != nil {
					b.Fatal(err)
				}
				k.Shutdown()
			}
		})
	}
}

// The rt hot-path families (internal/rtbench): the gate pacing fast
// path, the bounded MPSC queue behind the serve and shard workers (with
// its pre-campaign mutex-ring baseline), and the end-to-end zero-alloc
// invoke path on the live runtime. cmd/tbwf-bench -rt records the same
// leaves into BENCH_rt.json and gates regressions against it.
func BenchmarkGatePace(b *testing.B)   { rtbench.RunFamily(b, "GatePace") }
func BenchmarkServeQueue(b *testing.B) { rtbench.RunFamily(b, "ServeQueue") }
func BenchmarkInvokePath(b *testing.B) { rtbench.RunFamily(b, "InvokePath") }
