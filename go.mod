module tbwf

go 1.24
