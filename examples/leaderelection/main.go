// Leader election: Ω∆'s dynamic candidacy in action.
//
// Four processes run the Figure 3 implementation of Ω∆ (activity monitors
// + atomic registers) on the simulation kernel. Candidacies change over
// the run — processes join, withdraw, flicker, and one crashes — and the
// timeline shows the leader outputs adapting: a stable timely candidate is
// elected, hands over on withdrawal, survives churn by a repeated
// candidate (the self-punishment rule keeps the flickering process out of
// stable leadership), and re-election happens after the leader crashes.
//
// Run with: go run ./examples/leaderelection
package main

import (
	"fmt"
	"log"

	"tbwf/internal/omega"
	"tbwf/internal/sim"
)

func main() {
	const n = 4
	k := sim.New(n)
	sys, err := omega.BuildRegisters(k)
	if err != nil {
		log.Fatal(err)
	}
	obs := omega.NewObserver(sys.Instances)
	k.AfterStep(obs.Sample)

	setAll(sys, true)
	note(0, "everyone becomes a candidate")

	// The script: what happens when.
	events := map[int64]func(){
		150_000: func() {
			sys.Instances[0].Candidate.Set(false)
			note(150_000, "process 0 (the likely leader) withdraws")
		},
		300_000: func() { note(300_000, "process 3 starts flickering: joins/leaves every 25k steps") },
		700_000: func() { k.Crash(1); note(700_000, "process 1 crashes") },
	}
	flickering := false
	k.AfterStep(func(step int64) {
		if fn, ok := events[step]; ok {
			fn()
			if step == 300_000 {
				flickering = true
			}
		}
		if flickering && step%25_000 == 0 {
			inst := sys.Instances[3]
			inst.Candidate.Set(!inst.Candidate.Get())
		}
		if step%100_000 == 0 && step > 0 {
			fmt.Printf("step %7d: leaders = %v\n", step, obs.Leaders())
		}
	})

	if _, err := k.Run(1_200_000); err != nil {
		log.Fatal(err)
	}
	k.Shutdown()

	fmt.Printf("\nfinal leaders: %v  (-1 means \"?\")\n", obs.Leaders())
	fmt.Printf("counter registers: %v  (higher = punished more: withdrawals and suspicions)\n", counters(sys))
	fmt.Println("\nexpected reading: after the dust settles, the only permanent, timely,")
	fmt.Println("non-crashed candidate (process 2) is everyone's stable leader, while the")
	fmt.Println("flickering process 3 oscillates between ? and the leader, as the spec allows.")
}

func setAll(sys *omega.System, v bool) {
	for _, inst := range sys.Instances {
		inst.Candidate.Set(v)
	}
}

func note(step int64, msg string) {
	fmt.Printf("step %7d: %s\n", step, msg)
}

func counters(sys *omega.System) []int64 {
	out := make([]int64, sys.N)
	for q := range out {
		out[q] = sys.CounterReg[q].Peek()
	}
	return out
}
