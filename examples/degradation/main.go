// Degradation: the paper's headline claim as a table.
//
// n processes hammer one TBWF counter on the deterministic simulation
// kernel. We sweep how many of them are timely: the paper predicts that
// with k timely processes exactly those k are guaranteed progress — the
// progress condition slides from obstruction-freedom (k=0) through
// "lock-freedom in this run" (k=1) all the way to wait-freedom (k=n),
// degrading gracefully instead of collapsing (Section 1.1).
//
// The untimely processes get the low process ids on purpose: the
// election's (counter, id) tie-break favors them, so this is the
// adversarial corner of the claim.
//
// Run with: go run ./examples/degradation
package main

import (
	"fmt"
	"log"

	"tbwf/internal/exp"
)

func main() {
	fmt.Println("graceful degradation sweep (this takes a few seconds)...")
	table, err := exp.E1Degradation(exp.E1Config{N: 6, Steps: 2_000_000, Wanted: 10})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println()
	fmt.Print(table)
	fmt.Println()
	if chart, err := exp.StaircaseChart(table); err == nil {
		fmt.Print(chart)
		fmt.Println()
	}
	fmt.Println("reading the table: 'timely done' = k/k on every row is the staircase —")
	fmt.Println("each timely process finished its target regardless of how many untimely")
	fmt.Println("processes competed alongside it.")
}
