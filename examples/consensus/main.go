// Consensus from abortable registers — the paper's closing remark made
// runnable.
//
// Section 1.2 observes that because Ω∆ (hence the failure detector Ω,
// which suffices to solve consensus) can be implemented from abortable
// registers, consensus needs nothing stronger than abortable registers
// plus a single timely process. Here four processes propose different
// values; three of them are untimely (their scheduling gaps grow without
// bound) and only process 3 is timely. Under the strongest abort adversary
// — every contended register operation aborts — everyone still decides,
// and on the same proposed value.
//
// Run with: go run ./examples/consensus
package main

import (
	"fmt"
	"log"

	"tbwf/internal/consensus"
	"tbwf/internal/deploy"
	"tbwf/internal/sim"
)

func main() {
	const n = 4
	k := sim.New(n, sim.WithSchedule(sim.Restrict(sim.RoundRobin(), map[int]sim.Availability{
		0: sim.GrowingGaps(400, 600, 1.5),
		1: sim.GrowingGaps(400, 800, 1.5),
		2: sim.GrowingGaps(400, 1000, 1.5),
	})))

	proposals := []int64{111, 222, 333, 444}
	fmt.Println("proposals:", proposals, "— only process 3 is timely")

	parts, err := consensus.Build(deploy.Sim(k), proposals, false) // Ω∆ from abortable registers
	if err != nil {
		log.Fatal(err)
	}

	decidedAt := make([]int64, n)
	for p := range decidedAt {
		decidedAt[p] = -1
	}
	k.AfterStep(func(step int64) {
		for p := 0; p < n; p++ {
			if decidedAt[p] < 0 && parts[p].Decided.Get() {
				decidedAt[p] = step
				fmt.Printf("step %7d: process %d decides %d\n", step, p, parts[p].Value.Get())
			}
		}
	})

	if _, err := k.Run(6_000_000); err != nil {
		log.Fatal(err)
	}
	k.Shutdown()

	val, all, agree := consensus.DecidedAll(parts, []int{0, 1, 2, 3})
	switch {
	case !all:
		fmt.Println("\nnot everyone decided within the budget (untimely processes can be late)")
	case !agree:
		log.Fatal("\nAGREEMENT VIOLATED — this must never happen")
	default:
		fmt.Printf("\nall processes decided %d — agreement and validity hold, from registers\n", val)
		fmt.Println("weaker than safe, with a single timely process.")
	}
}
