// Job queue: a domain workload over a TBWF FIFO queue.
//
// The paper's introduction motivates TBWF with systems that are
// "synchronous most of the time": when synchrony degrades we may accept
// losing liveness for the degraded processes, but never for the healthy
// ones. Here two producers enqueue jobs and two consumers dequeue them
// through a shared TBWF queue. Producer 1 becomes untimely mid-run — its
// scheduling gaps grow without bound — while everyone else stays timely.
//
// Outcome to observe: the healthy producer and both consumers never stall;
// every job that is enqueued is dequeued exactly once, in FIFO order; the
// degraded producer's throughput collapses, but only its own.
//
// Run with: go run ./examples/jobqueue
package main

import (
	"fmt"
	"log"

	"tbwf/internal/deploy"
	"tbwf/internal/objtype"
	"tbwf/internal/prim"
	"tbwf/internal/sim"
)

const (
	producers = 2
	consumers = 2
	n         = producers + consumers
)

func main() {
	// Process 1 (a producer) degrades after an initially healthy phase.
	k := sim.New(n, sim.WithSchedule(sim.Restrict(sim.RoundRobin(), map[int]sim.Availability{
		1: degradeAfter(300_000),
	})))
	st, err := deploy.Build[[]int64, objtype.QueueOp, objtype.QueueResp](deploy.Sim(k), objtype.Queue{}, deploy.BuildConfig{})
	if err != nil {
		log.Fatal(err)
	}

	produced := make([]int64, producers)
	consumed := make([][]int64, consumers)
	for p := 0; p < producers; p++ {
		p := p
		k.Spawn(p, fmt.Sprintf("producer[%d]", p), func(pp prim.Proc) {
			for job := int64(0); ; job++ {
				id := int64(p)*1_000_000 + job // globally unique job id
				st.Clients[p].Invoke(pp, objtype.QueueOp{Enq: true, V: id})
				produced[p]++
			}
		})
	}
	for c := 0; c < consumers; c++ {
		c := c
		proc := producers + c
		k.Spawn(proc, fmt.Sprintf("consumer[%d]", c), func(pp prim.Proc) {
			for {
				r := st.Clients[proc].Invoke(pp, objtype.QueueOp{Enq: false})
				if r.Ok {
					consumed[c] = append(consumed[c], r.V)
				}
			}
		})
	}

	for phase := 1; phase <= 4; phase++ {
		if _, err := k.Run(500_000); err != nil {
			log.Fatal(err)
		}
		totalConsumed := len(consumed[0]) + len(consumed[1])
		fmt.Printf("after %4.1fM steps: produced healthy=%3d degraded=%3d   consumed=%3d\n",
			float64(phase)*0.5, produced[0], produced[1], totalConsumed)
	}
	k.Shutdown()

	// Verify exactly-once FIFO delivery per producer.
	var lastSeen [producers]int64
	for i := range lastSeen {
		lastSeen[i] = -1
	}
	seen := map[int64]bool{}
	for c := 0; c < consumers; c++ {
		perProducerPrev := map[int64]int64{}
		for _, id := range consumed[c] {
			if seen[id] {
				log.Fatalf("job %d consumed twice", id)
			}
			seen[id] = true
			prod := id / 1_000_000
			if prevJob, ok := perProducerPrev[prod]; ok && id%1_000_000 < prevJob {
				log.Fatalf("consumer %d saw producer %d's jobs out of order", c, prod)
			}
			perProducerPrev[prod] = id % 1_000_000
		}
	}
	fmt.Printf("\nverified: %d jobs consumed, each exactly once, per-producer FIFO preserved\n", len(seen))
	fmt.Println("the degraded producer slowed to a crawl; nobody else did — graceful degradation.")
}

// degradeAfter is healthy until the given step, then develops geometrically
// growing gaps.
func degradeAfter(at int64) sim.Availability {
	gaps := sim.GrowingGaps(400, 20_000, 1.7)
	return func(step int64) bool {
		if step < at {
			return true
		}
		return gaps(step - at)
	}
}
