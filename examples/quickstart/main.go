// Quickstart: a shared TBWF counter on real goroutines.
//
// Three processes share a fetch-and-add counter built with the paper's
// universal transformation (Figure 7): Ω∆ elects whoever should access the
// underlying query-abortable object next, the canonical protocol rotates
// leadership fairly, and every timely process completes all of its
// operations — here all three run at full speed, so the object is
// effectively wait-free (Section 1.1's limit case).
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"time"

	"tbwf/internal/deploy"
	"tbwf/internal/objtype"
	"tbwf/internal/prim"
	"tbwf/internal/rt"
)

func main() {
	const (
		n       = 3
		opsEach = 5
	)
	runtime := rt.New(n, rt.Steady(0))
	stack, err := deploy.Build[int64, objtype.CounterOp, int64](runtime, objtype.Counter{}, deploy.BuildConfig{})
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	type result struct {
		proc int
		resp int64
	}
	results := make(chan result, n*opsEach)
	done := make(chan int, n)
	for p := 0; p < n; p++ {
		p := p
		runtime.Spawn(p, "client", func(pp prim.Proc) {
			for i := 0; i < opsEach; i++ {
				// Invoke blocks until the operation completes; a timely
				// process always gets through.
				resp := stack.Clients[p].Invoke(pp, objtype.CounterOp{Delta: 1})
				results <- result{proc: p, resp: resp}
			}
			done <- p
		})
	}

	for finished := 0; finished < n; {
		select {
		case r := <-results:
			fmt.Printf("process %d incremented: previous value was %2d\n", r.proc, r.resp)
		case p := <-done:
			fmt.Printf("process %d finished its %d operations\n", p, opsEach)
			finished++
		case <-time.After(30 * time.Second):
			log.Fatal("timed out — the timely processes should all have finished")
		}
	}

	if err := runtime.Stop(); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%d operations across %d goroutine processes in %v\n", n*opsEach, n, time.Since(start).Round(time.Millisecond))
	fmt.Println("every fetch-and-add response above is distinct: the counter linearized.")
}
